"""Cartesian predicate abstraction and abstract reachability (Section 4.1).

The abstract-reachability phase of CEGAR unwinds the CFG into an abstract
reachability tree (ART).  Each node carries a location and an abstract state,
which here is the set of tracked predicates (from the location-indexed
precision ``Pi``) that are known to hold.  The abstract post operator is
Cartesian: each predicate of the target location is kept iff it is implied by
the source state and the transition relation, decided by the exact VC
checker.  Transitions whose source state contradicts their guard are pruned.

The ART is a *persistent* structure (:class:`Art`): it survives refinement
rounds.  After a refinement adds predicates at locations ``L`` (the pivot
locations of the infeasible path), :meth:`Art.apply_refinement` repairs the
tree in place instead of rebuilding it:

* every live node at a pivot location (a location that gained predicates) is
  *delta-rechecked*: only the newly added predicates are decided against the
  node's (unchanged) parent state — the old positive and negative verdicts
  are precision-independent and carry over for free;
* a node that gains no new predicate keeps its entire subtree untouched;
* a node that gains a predicate is *strengthened*, which starts a
  down-the-tree wave exploiting the monotonicity of the Cartesian post: a
  stronger source state keeps infeasible edges infeasible and old positive
  verdicts positive, so for each child only the edge check, the
  previously-negative predicates and the delta are re-decided; a child whose
  state comes out unchanged stops the wave and keeps its whole subtree;
* the coverage index is repaired along the way — a strengthened node is
  re-keyed (or folded under an existing weaker state outside its own
  subtree, discarding its now-redundant subtree), and nodes covered by
  removed or re-keyed representatives are un-covered and re-checked against
  the settled index;
* the error node of the refuted counterexample is always removed and its
  incoming edge re-enqueued, so the next round re-derives it against the
  strengthened source state (usually refuting it).

The repaired tree is state-for-state what a from-scratch rebuild under the
new precision would compute: the wave decides exactly the obligations whose
verdicts monotonicity cannot supply, and every carried-over verdict is
precision-independent.  What the engine saves is every abstract-post
decision in untouched regions plus every old-positive re-derivation in
strengthened ones.

The predicates produced by path-invariant refinement are conjunctive per
location, so Cartesian abstraction is precise enough to reconstruct the
safety proofs of the paper's examples.
"""

from __future__ import annotations

import heapq
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Optional, Sequence

from ..lang.cfg import Location, Program, Transition
from ..lang.commands import command_writes
from ..logic.formulas import FALSE, Formula, TRUE
from ..smt.vcgen import VcChecker

__all__ = [
    "Precision",
    "ArtNode",
    "Art",
    "AbstractReachability",
    "ReachabilityOutcome",
    "Frontier",
    "BfsFrontier",
    "DfsFrontier",
    "ErrorDistanceFrontier",
    "make_frontier",
    "FRONTIER_NAMES",
    "split_frame_predicates",
]


class Precision:
    """Location-indexed predicate sets (the abstraction ``Pi`` of the paper).

    Besides the predicate sets themselves, the precision keeps an append-only
    journal of successful additions so that the incremental engine can ask
    "which locations changed since the last reachability round?" without the
    refiners having to report anything (``mark()`` / ``added_since()``).

    ``max_per_location`` optionally caps the number of predicates tracked at
    any single location: further additions there are rejected (and counted in
    ``predicates_dropped``).  This bounds the path-formula refiner's
    predicate flood on array programs; ``None`` (the default) keeps the
    historical unbounded behaviour.
    """

    def __init__(self, max_per_location: Optional[int] = None) -> None:
        if max_per_location is not None and max_per_location < 1:
            raise ValueError(
                f"max_per_location must be at least 1, got {max_per_location}"
            )
        self.max_per_location = max_per_location
        #: Predicates rejected by the per-location cap (diagnostics only).
        self.predicates_dropped = 0
        self._predicates: dict[Location, set[Formula]] = {}
        self._journal: list[tuple[Location, Formula]] = []

    def predicates_at(self, location: Location) -> frozenset[Formula]:
        return frozenset(self._predicates.get(location, set()))

    def add(self, location: Location, predicate: Formula) -> bool:
        """Add a predicate; returns True when it is new (and under the cap)."""
        if predicate in (TRUE, FALSE):
            return False
        existing = self._predicates.setdefault(location, set())
        if predicate in existing:
            return False
        if (
            self.max_per_location is not None
            and len(existing) >= self.max_per_location
        ):
            self.predicates_dropped += 1
            return False
        existing.add(predicate)
        self._journal.append((location, predicate))
        return True

    def add_all(self, location: Location, predicates: Iterable[Formula]) -> int:
        return sum(1 for predicate in predicates if self.add(location, predicate))

    def mark(self) -> int:
        """An opaque journal position for later :meth:`added_since` calls."""
        return len(self._journal)

    def added_since(self, mark: int) -> dict[Location, tuple[Formula, ...]]:
        """Predicates added after ``mark``, grouped by location."""
        delta: dict[Location, list[Formula]] = {}
        for location, predicate in self._journal[mark:]:
            delta.setdefault(location, []).append(predicate)
        return {location: tuple(preds) for location, preds in delta.items()}

    def total_predicates(self) -> int:
        return sum(len(preds) for preds in self._predicates.values())

    def locations(self) -> list[Location]:
        return sorted(self._predicates, key=lambda l: l.name)

    def snapshot(self) -> dict[Location, frozenset[Formula]]:
        """An immutable per-location view (used by equivalence tests)."""
        return {
            location: frozenset(preds)
            for location, preds in self._predicates.items()
            if preds
        }

    def by_location_name(self) -> dict[str, tuple[Formula, ...]]:
        """The predicate sets keyed by location *name* (deterministic order).

        Location names are stable across independent parses of the same
        source (the CFG builder is deterministic), so this is the portable
        form a precision travels in — across process pools and between
        sessions (see :class:`repro.core.api.PrecisionStore`).  Formulas are
        picklable and re-intern on load.
        """
        return {
            location.name: tuple(sorted(predicates, key=str))
            for location, predicates in self._predicates.items()
            if predicates
        }

    @classmethod
    def from_location_names(
        cls,
        program: Program,
        payload: dict[str, Iterable[Formula]],
        max_per_location: Optional[int] = None,
    ) -> "Precision":
        """Rebind a :meth:`by_location_name` payload onto ``program``.

        Names with no matching location in ``program`` are ignored (the
        payload may come from a store keyed by fingerprint, but defensive
        matching keeps a stale entry from crashing a run).
        """
        precision = cls(max_per_location)
        locations = {location.name: location for location in program.locations}
        for name, predicates in payload.items():
            location = locations.get(name)
            if location is None:
                continue
            for predicate in sorted(predicates, key=str):
                precision.add(location, predicate)
        return precision

    def copy(self) -> "Precision":
        clone = Precision(self.max_per_location)
        clone.predicates_dropped = self.predicates_dropped
        for location, predicates in self._predicates.items():
            clone._predicates[location] = set(predicates)
        clone._journal = list(self._journal)
        return clone

    def __str__(self) -> str:
        lines = []
        for location in self.locations():
            rendered = ", ".join(sorted(str(p) for p in self._predicates[location]))
            lines.append(f"  Pi({location}) = {{ {rendered} }}")
        return "\n".join(lines) or "  (no predicates)"


@dataclass(eq=False)
class ArtNode:
    """A node of the abstract reachability tree.

    ``eq=False`` keeps identity semantics: nodes live in hash-based indices
    (coverage, per-location) and carry parent/child references, so structural
    equality would both recurse and conflate distinct tree positions.
    """

    location: Location
    state: frozenset[Formula]
    parent: Optional["ArtNode"] = None
    incoming: Optional[Transition] = None
    node_id: int = 0
    covered_by: Optional["ArtNode"] = None
    depth: int = 0
    children: list["ArtNode"] = field(default_factory=list)
    #: Nodes whose coverage this node is responsible for (it is their
    #: representative in the coverage index).
    covers: list["ArtNode"] = field(default_factory=list)
    removed: bool = False
    #: Bumped when the node's pending obligations are retired (cover folds,
    #: orphan re-opens); frontier entries carry the epoch at push time so
    #: stale obligations are skipped on pop.
    epoch: int = 0

    def path_from_root(self) -> list[Transition]:
        transitions: list[Transition] = []
        node: Optional[ArtNode] = self
        while node is not None and node.incoming is not None:
            transitions.append(node.incoming)
            node = node.parent
        transitions.reverse()
        return transitions


@dataclass
class ReachabilityOutcome:
    """Result of one abstract-reachability run."""

    #: None when the error location is unreachable in the abstraction.
    counterexample: Optional[list[Transition]]
    nodes_expanded: int
    nodes_created: int
    exhausted: bool = False  # True when a node/solver/time budget was hit
    #: Why the exploration was cut short (only set when ``exhausted``).
    exhausted_reason: str = ""

    @property
    def is_safe(self) -> bool:
        return self.counterexample is None and not self.exhausted


# ----------------------------------------------------------------------
# Frontier disciplines (pluggable exploration strategies)
# ----------------------------------------------------------------------
#: A frontier entry: expand ``node`` along ``transition`` (the epoch pins the
#: obligation to the node's state at push time).
_Obligation = tuple[ArtNode, Transition, int]


class Frontier:
    """Interface of exploration orders over per-edge obligations."""

    name = "abstract"

    def push(self, node: ArtNode, transition: Transition) -> None:
        raise NotImplementedError

    def pop(self) -> Optional[_Obligation]:
        raise NotImplementedError

    def pending(self) -> list[_Obligation]:
        """The queued obligations, in no particular order (introspection)."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class BfsFrontier(Frontier):
    """First-in first-out: breadth-first over the tree (the paper's order)."""

    name = "bfs"

    def __init__(self) -> None:
        self._queue: deque[_Obligation] = deque()

    def push(self, node: ArtNode, transition: Transition) -> None:
        self._queue.append((node, transition, node.epoch))

    def pop(self) -> Optional[_Obligation]:
        return self._queue.popleft() if self._queue else None

    def pending(self) -> list[_Obligation]:
        return list(self._queue)

    def __len__(self) -> int:
        return len(self._queue)


class DfsFrontier(Frontier):
    """Last-in first-out: depth-first plunges (finds deep bugs early)."""

    name = "dfs"

    def __init__(self) -> None:
        self._stack: list[_Obligation] = []

    def push(self, node: ArtNode, transition: Transition) -> None:
        self._stack.append((node, transition, node.epoch))

    def pop(self) -> Optional[_Obligation]:
        return self._stack.pop() if self._stack else None

    def pending(self) -> list[_Obligation]:
        return list(self._stack)

    def __len__(self) -> int:
        return len(self._stack)


class ErrorDistanceFrontier(Frontier):
    """Best-first by static distance to the error location.

    The distance map is a reverse BFS over the CFG; obligations whose target
    is closer to the error location are expanded first.  Equal-rank
    obligations are ordered by the *stable node id* of their source — not by
    insertion order — so a parallel run (whose workers may re-offer
    obligations in a different order) and a sequential run pop the same
    obligation and ultimately refine the same pivot.  The insertion counter
    remains only as the final tie-break among multiple outgoing transitions
    of one node, where push order is deterministic (CFG declaration order).
    """

    name = "error-distance"

    def __init__(self, program: Program) -> None:
        self._distance = self._distances(program)
        self._heap: list[tuple[int, int, int, _Obligation]] = []
        self._counter = 0

    @staticmethod
    def _distances(program: Program) -> dict[Location, int]:
        incoming: dict[Location, list[Transition]] = {}
        for transition in program.transitions:
            incoming.setdefault(transition.target, []).append(transition)
        distance = {program.error: 0}
        queue = deque([program.error])
        while queue:
            location = queue.popleft()
            for transition in incoming.get(location, []):
                if transition.source not in distance:
                    distance[transition.source] = distance[location] + 1
                    queue.append(transition.source)
        return distance

    def push(self, node: ArtNode, transition: Transition) -> None:
        rank = self._distance.get(transition.target, len(self._distance) + 1)
        self._counter += 1
        heapq.heappush(
            self._heap,
            (rank, node.node_id, self._counter, (node, transition, node.epoch)),
        )

    def pop(self) -> Optional[_Obligation]:
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[3]

    def pending(self) -> list[_Obligation]:
        return [entry for _, _, _, entry in self._heap]

    def __len__(self) -> int:
        return len(self._heap)


FRONTIER_NAMES = ("bfs", "dfs", "error-distance")


def make_frontier(name: str, program: Program) -> Frontier:
    """Construct an exploration strategy by name."""
    if name == "bfs":
        return BfsFrontier()
    if name == "dfs":
        return DfsFrontier()
    if name == "error-distance":
        return ErrorDistanceFrontier(program)
    raise ValueError(f"unknown exploration strategy {name!r}; expected one of {FRONTIER_NAMES}")


# ----------------------------------------------------------------------
# The Cartesian-post frame rule, shared by the ART and parallel workers
# ----------------------------------------------------------------------
def split_frame_predicates(
    state: frozenset[Formula],
    transition: Transition,
    predicates: Iterable[Formula],
) -> tuple[list[Formula], list[Formula]]:
    """Split ``predicates`` into ``(carried, undecided)`` across ``transition``.

    ``carried`` are the predicates the frame rule settles for free: they
    already hold in ``state`` and none of their variables or arrays is
    written by the transition, so they keep holding.  ``undecided`` is
    everything else — the part that needs the abstract-post oracle.  Pure
    and deterministic, which is why both :meth:`Art._cartesian_post` and the
    speculative workers of :mod:`repro.core.parallel` can apply it
    independently and agree on exactly which predicates reach the solver.
    """
    written: Optional[set[str]] = None
    carried: list[Formula] = []
    undecided: list[Formula] = []
    for predicate in predicates:
        if predicate in state:
            if written is None:
                written = set()
                for command in transition.commands:
                    written |= command_writes(command)
            touched = {v.name for v in predicate.variables()} | predicate.arrays()
            if not touched & written:
                carried.append(predicate)
                continue
        undecided.append(predicate)
    return carried, undecided


# ----------------------------------------------------------------------
# The persistent abstract reachability tree
# ----------------------------------------------------------------------
@dataclass
class ExploreLimits:
    """Budgets enforced during one :meth:`Art.explore` round.

    ``max_nodes`` bounds the *cumulative* nodes created over the tree's
    lifetime (matching the restart engine, which counts per run — a persistent
    tree creates strictly fewer).  ``deadline`` is an absolute
    ``time.perf_counter()`` value; ``max_solver_calls`` bounds the checker's
    cumulative triple-check counter.
    """

    max_nodes: Optional[int] = None
    deadline: Optional[float] = None
    max_solver_calls: Optional[int] = None


class Art:
    """A persistent abstract reachability tree.

    The tree, its frontier and its coverage index live across refinement
    rounds.  :meth:`explore` advances the frontier under the current
    precision until the error location is reached, the frontier drains, or a
    budget trips; :meth:`apply_refinement` repairs the tree after the
    precision grew instead of discarding it.
    """

    def __init__(
        self,
        program: Program,
        checker: Optional[VcChecker] = None,
        frontier: Optional[Frontier] = None,
    ) -> None:
        self.program = program
        self.checker = checker or VcChecker()
        # Not `frontier or ...`: an empty frontier is falsy via __len__.
        self.frontier = frontier if frontier is not None else BfsFrontier()
        #: Optional speculative-execution hook (duck-typed; in practice a
        #: :class:`repro.core.parallel.SpeculativePool`).  When set, every
        #: obligation entering the frontier is also *offered* to it
        #: (``offer(node, transition)``), and :meth:`_expand_edge` asks it to
        #: ``install(state, transition)`` speculated verdicts into the shared
        #: checker just before deciding the edge — the commit then runs the
        #: unchanged sequential algorithm against a pre-warmed memo.
        self.speculator = None
        self._outgoing: dict[Location, list[Transition]] = {}
        for transition in program.transitions:
            self._outgoing.setdefault(transition.source, []).append(transition)

        self.root = ArtNode(program.initial, frozenset(), node_id=0)
        self._by_location: dict[Location, list[ArtNode]] = {program.initial: [self.root]}
        #: Coverage index: per location, the distinct abstract states already
        #: reached, each owned by the (live, uncovered) representative node
        #: that first reached it.
        self._reached: dict[Location, dict[frozenset[Formula], ArtNode]] = {
            program.initial: {self.root.state: self.root}
        }
        self._error_node: Optional[ArtNode] = None

        # Lifetime counters (monotone; per-round deltas are taken by callers).
        self.nodes_created = 1
        self.edges_expanded = 0
        #: Abstract-post decisions requested from the checker: edge
        #: feasibility checks plus per-predicate post checks.  Frame-rule
        #: shortcuts are not counted (neither engine pays for them); memo
        #: hits are — a restart engine re-requests them, this one does not.
        self.post_decisions = 0
        self.nodes_invalidated = 0
        self.nodes_reused = 0
        self.nodes_strengthened = 0

        self._enqueue_all(self.root)

    # ------------------------------------------------------------------
    # Exploration
    # ------------------------------------------------------------------
    def explore(
        self, precision: Precision, limits: Optional[ExploreLimits] = None
    ) -> ReachabilityOutcome:
        """Advance the frontier until an error path, a fixpoint, or a budget."""
        limits = limits or ExploreLimits()
        expanded_before = self.edges_expanded
        created_before = self.nodes_created

        while True:
            entry = self.frontier.pop()
            if entry is None:
                break
            node, transition, epoch = entry
            if node.removed or node.covered_by is not None or epoch != node.epoch:
                continue
            reason = self._budget_exceeded(limits)
            if reason:
                # Re-queue the untouched obligation so a later round with a
                # larger budget can resume exactly where this one stopped.
                self.frontier.push(node, transition)
                return ReachabilityOutcome(
                    None,
                    self.edges_expanded - expanded_before,
                    self.nodes_created - created_before,
                    exhausted=True,
                    exhausted_reason=reason,
                )
            child = self._expand_edge(node, transition, precision)
            if child is not None and child.location == self.program.error:
                self._error_node = child
                return ReachabilityOutcome(
                    child.path_from_root(),
                    self.edges_expanded - expanded_before,
                    self.nodes_created - created_before,
                )
        return ReachabilityOutcome(
            None,
            self.edges_expanded - expanded_before,
            self.nodes_created - created_before,
        )

    def _budget_exceeded(self, limits: ExploreLimits) -> str:
        if limits.max_nodes is not None and self.nodes_created > limits.max_nodes:
            return f"node budget of {limits.max_nodes} exhausted"
        if limits.deadline is not None and time.perf_counter() > limits.deadline:
            return "wall-clock budget exhausted"
        if (
            limits.max_solver_calls is not None
            and self.checker.num_triple_checks > limits.max_solver_calls
        ):
            return f"solver budget of {limits.max_solver_calls} triple checks exhausted"
        return ""

    def _expand_edge(
        self, node: ArtNode, transition: Transition, precision: Precision
    ) -> Optional[ArtNode]:
        """Compute the Cartesian post along one edge; attach and index the child."""
        self.edges_expanded += 1
        self.post_decisions += 1
        if self.speculator is not None:
            # Merge point of parallel exploration: claim this obligation's
            # speculated verdicts (blocking on an in-flight worker if need
            # be) so the checker calls below become cache hits.  Verdict
            # order and counters stay exactly sequential — see
            # repro.core.parallel for the protocol.
            self.speculator.install(node.state, transition)
        if not self.checker.edge_feasible(node.state, transition):
            return None
        successor_state = self._cartesian_post(node.state, transition, precision)
        child = ArtNode(
            transition.target,
            successor_state,
            parent=node,
            incoming=transition,
            node_id=self.nodes_created,
            depth=node.depth + 1,
        )
        self.nodes_created += 1
        node.children.append(child)
        self._by_location.setdefault(child.location, []).append(child)
        if child.location == self.program.error:
            return child
        representative = self._find_cover(child)
        if representative is not None:
            child.covered_by = representative
            representative.covers.append(child)
            return child
        self._reached.setdefault(child.location, {})[child.state] = child
        self._enqueue_all(child)
        return child

    def _cartesian_post(
        self,
        state: frozenset[Formula],
        transition: Transition,
        precision: Precision,
        predicates: Optional[Iterable[Formula]] = None,
    ) -> frozenset[Formula]:
        """The set of target-location predicates implied across the edge.

        ``predicates`` restricts the decision to a subset (the delta recheck
        path); by default every predicate of the target's precision is
        decided.
        """
        if predicates is None:
            predicates = precision.predicates_at(transition.target)
        # Frame rule shortcut: a predicate that already holds and whose
        # variables/arrays are untouched by the transition keeps holding.
        carried, undecided = split_frame_predicates(state, transition, predicates)
        successors: set[Formula] = set(carried)
        if undecided:
            # One batched query for the whole edge: the checker answers memo
            # hits from the post cache and decides the rest inside a single
            # incremental solver context (the edge is translated and its
            # ``pre ∧ trans`` core asserted once, each predicate costing one
            # push/check/pop of its negated renamed form).
            self.post_decisions += len(undecided)
            verdicts = self.checker.post_all_predicates(state, transition, undecided)
            successors.update(p for p, holds in verdicts.items() if holds)
        return frozenset(successors)

    def _find_cover(
        self, node: ArtNode, exclude_subtree: bool = False
    ) -> Optional[ArtNode]:
        """The representative of a weaker abstract state, if one is reached.

        An exact membership test catches the common duplicate-state case
        before the subset scan.  ``exclude_subtree`` rejects representatives
        that are descendants of ``node`` itself: when an *internal* node is
        re-covered after strengthening, covering it by its own subtree would
        be circular (the coverer is deleted with the folded subtree) — a
        freshly created leaf can never hit this, so expansion skips the walk.
        """
        states = self._reached.get(node.location)
        if not states:
            return None
        exact = states.get(node.state)
        if exact is not None and not (exclude_subtree and self._is_descendant(exact, node)):
            return exact
        for state, representative in states.items():
            if state.issubset(node.state):
                if exclude_subtree and self._is_descendant(representative, node):
                    continue
                return representative
        return None

    @staticmethod
    def _is_descendant(node: ArtNode, ancestor: ArtNode) -> bool:
        if node.depth <= ancestor.depth:
            return False
        current: Optional[ArtNode] = node
        while current is not None and current.depth > ancestor.depth:
            current = current.parent
        return current is ancestor

    def _enqueue_all(self, node: ArtNode) -> None:
        for transition in self._outgoing.get(node.location, []):
            self.frontier.push(node, transition)
            if self.speculator is not None:
                self.speculator.offer(node, transition)

    # ------------------------------------------------------------------
    # Refinement repair (pivot invalidation + delta recheck)
    # ------------------------------------------------------------------
    def apply_refinement(
        self, precision: Precision, delta: dict[Location, tuple[Formula, ...]]
    ) -> dict[str, int]:
        """Repair the tree after predicates ``delta`` were added to ``precision``.

        Returns per-call counters: ``rechecked`` (pivot nodes
        delta-rechecked), ``reused`` (nodes whose state came out unchanged,
        stopping the repair wave and keeping their subtrees), ``strengthened``
        (nodes whose state gained a predicate), ``invalidated`` (nodes
        removed because their incoming edge became infeasible or their
        subtree folded under a cover), ``retained`` (live nodes surviving the
        repair — work a restart engine would re-derive from scratch).
        """
        invalidated_before = self.nodes_invalidated
        reused_before = self.nodes_reused
        strengthened_before = self.nodes_strengthened

        orphans: list[ArtNode] = []
        # The refuted counterexample's error node always goes: its abstract
        # path was infeasible, and the repaired ancestors re-derive (or
        # refute) the edge when its obligation comes back up.
        self.drop_error_node()

        candidates = [
            node
            for location in delta
            for node in self._by_location.get(location, [])
            if not node.removed and node.parent is not None
        ]
        # Top-down: a wave started at a shallower pivot settles every node it
        # reaches (marking it visited), so deeper candidates inside an
        # already-repaired subtree are skipped.
        candidates.sort(key=lambda node: (node.depth, node.node_id))
        visited: set[int] = set()
        rechecked = 0
        for node in candidates:
            if node.removed or id(node) in visited:
                continue
            rechecked += 1
            parent = node.parent
            assert parent is not None and not parent.removed
            gained = self._cartesian_post(
                parent.state,
                node.incoming,
                precision,
                predicates=[p for p in delta[node.location] if p not in node.state],
            )
            if not gained:
                # The node's state is already complete under the new
                # precision: the whole subtree below it is reused as is.
                visited.add(id(node))
                self.nodes_reused += 1
                continue
            self._strengthen_wave(node, node.state | gained, precision, visited, orphans)

        self._repair_orphans(orphans)
        return {
            "rechecked": rechecked,
            "reused": self.nodes_reused - reused_before,
            "strengthened": self.nodes_strengthened - strengthened_before,
            "invalidated": self.nodes_invalidated - invalidated_before,
            "retained": self.num_live_nodes(),
        }

    def drop_error_node(self) -> None:
        """Remove the current error node and re-enqueue its incoming edge.

        Called by refinement repair, and by the engine when it returns
        *without* refining an infeasible counterexample (refinement budget
        tripped, refiner made no progress).  Leaving the error node in the
        tree would be unsound under resumption: its concrete-infeasibility
        verdict holds for its own path only, yet coverage would let deeper
        paths fold onto its ancestors and drain the frontier into a SAFE
        verdict nobody checked.  Re-enqueueing the edge makes a resumed
        round re-derive the counterexample and actually refine (or refute)
        it.
        """
        if self._error_node is not None and not self._error_node.removed:
            error = self._error_node
            self._detach_leaf(error)
            if error.parent is not None and not error.parent.removed:
                self.frontier.push(error.parent, error.incoming)
        self._error_node = None

    def _strengthen_wave(
        self,
        node: ArtNode,
        new_state: frozenset[Formula],
        precision: Precision,
        visited: set[int],
        orphans: list[ArtNode],
    ) -> None:
        """Propagate a strictly stronger state down the tree.

        Monotonicity of the Cartesian post (a stronger source implies every
        old positive verdict and keeps infeasible edges infeasible) lets each
        child be repaired by re-deciding only its incoming-edge feasibility
        and its previously-negative predicates; a child whose state comes out
        unchanged stops the wave and keeps its subtree.
        """
        stack: list[tuple[ArtNode, frozenset[Formula]]] = [(node, new_state)]
        while stack:
            current, state = stack.pop()
            visited.add(id(current))
            self.nodes_strengthened += 1
            self._drop_representative(current, orphans)
            current.state = state
            if current.covered_by is not None:
                # Still covered: the covering state is a subset of the old
                # state, hence of the strictly larger new one.
                continue
            representative = self._find_cover(current, exclude_subtree=True)
            if representative is not None:
                # The stronger state falls under an existing weaker one
                # outside the node's own subtree, so the subtree is
                # redundant — fold it away.  Register the coverage first: if
                # the representative is itself removed later in this repair,
                # the orphan pass re-homes this node.
                current.covered_by = representative
                representative.covers.append(current)
                for child in current.children:
                    self._remove_subtree(child, orphans)
                current.children = []
                current.epoch += 1  # retire any pending expansion obligations
                continue
            self._reached.setdefault(current.location, {})[current.state] = current

            for child in list(current.children):
                self.post_decisions += 1
                if not self.checker.edge_feasible(current.state, child.incoming):
                    # The edge closed under the stronger state.  Monotonicity
                    # makes this final — no re-expansion obligation needed.
                    current.children.remove(child)
                    self._remove_subtree(child, orphans)
                    continue
                grown = self._cartesian_post(
                    current.state,
                    child.incoming,
                    precision,
                    predicates=[
                        p
                        for p in precision.predicates_at(child.location)
                        if p not in child.state
                    ],
                )
                if grown:
                    stack.append((child, child.state | grown))
                else:
                    visited.add(id(child))
                    self.nodes_reused += 1

    def _remove_subtree(self, node: ArtNode, orphans: list[ArtNode]) -> None:
        stack = [node]
        while stack:
            current = stack.pop()
            current.removed = True
            self.nodes_invalidated += 1
            if self._error_node is current:
                self._error_node = None
            self._by_location[current.location].remove(current)
            self._drop_representative(current, orphans)
            if current.covered_by is not None:
                current.covered_by = None  # the coverer need not track dead nodes
            stack.extend(current.children)
            current.children = []

    def _detach_leaf(self, node: ArtNode) -> None:
        node.removed = True
        self.nodes_invalidated += 1
        self._by_location[node.location].remove(node)
        if node.parent is not None:
            node.parent.children.remove(node)

    def _drop_representative(self, node: ArtNode, orphans: list[ArtNode]) -> None:
        """Un-index a node's state and orphan everything it covered."""
        states = self._reached.get(node.location)
        if states is not None and states.get(node.state) is node:
            del states[node.state]
        if node.covers:
            orphans.extend(node.covers)
            node.covers = []

    def _repair_orphans(self, orphans: list[ArtNode]) -> None:
        """Re-cover or re-open nodes whose representative went away.

        Deferred to the end of the repair pass so re-checks run against the
        settled coverage index.
        """
        for node in orphans:
            if node.removed:
                continue
            node.covered_by = None
            representative = self._find_cover(node)
            if representative is not None:
                node.covered_by = representative
                representative.covers.append(node)
                continue
            self._reached.setdefault(node.location, {})[node.state] = node
            node.epoch += 1
            self._enqueue_all(node)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def live_nodes(self) -> Iterator[ArtNode]:
        """All nodes currently in the tree (root first, pre-order)."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children)

    def num_live_nodes(self) -> int:
        return sum(1 for _ in self.live_nodes())

    def progress_signature(self) -> dict[str, int]:
        """The cheap per-round signals the divergence monitor consumes.

        A refiner that makes progress shrinks the abstract error frontier
        over time: coverage kicks in, live nodes stabilise and pending
        obligations drain.  A diverging refiner (one loop unrolling per
        refinement) instead grows ``frontier`` and ``nodes_live`` round after
        round while ``nodes_reused`` stalls relative to ``nodes_created``.
        """
        return {
            "frontier": len(self.frontier),
            "nodes_live": self.num_live_nodes(),
            "nodes_created": self.nodes_created,
            "nodes_reused": self.nodes_reused,
        }

    def statistics(self) -> dict[str, int]:
        return {
            "nodes_created": self.nodes_created,
            "nodes_live": self.num_live_nodes(),
            "nodes_invalidated": self.nodes_invalidated,
            "nodes_reused": self.nodes_reused,
            "nodes_strengthened": self.nodes_strengthened,
            "edges_expanded": self.edges_expanded,
            "post_decisions": self.post_decisions,
            "frontier": len(self.frontier),
        }

    def validate(self, precision: Precision) -> list[str]:
        """Structural soundness of the (repaired) tree; [] when consistent.

        Checks, for every live node: the recorded state is exactly the
        Cartesian post of its parent's state under the current precision
        (decided through the memoised checker, so validation is cheap after a
        run — this is the invariant the repair wave maintains); covered nodes
        point at live, uncovered representatives with weaker states;
        uncovered non-error nodes have a child, a queued obligation, or an
        infeasible edge for every outgoing transition.  Used by the
        incremental-vs-restart equivalence tests.
        """
        problems: list[str] = []
        pending: set[tuple[int, Transition]] = set()
        # Collect what is still queued so unexpanded edges are not flagged.
        for node, transition, epoch in self.frontier.pending():
            if epoch == node.epoch:
                pending.add((id(node), transition))

        for node in self.live_nodes():
            if node.removed:
                problems.append(f"live node {node.node_id} is marked removed")
            if node.parent is not None and node.location != self.program.error:
                expected = self._cartesian_post(node.parent.state, node.incoming, precision)
                if expected != node.state:
                    problems.append(
                        f"node {node.node_id}@{node.location} state mismatch: "
                        f"has {sorted(map(str, node.state))}, "
                        f"expected {sorted(map(str, expected))}"
                    )
            if node.covered_by is not None:
                rep = node.covered_by
                if rep.removed or rep.covered_by is not None:
                    problems.append(f"node {node.node_id} covered by a dead/covered node")
                elif not rep.state.issubset(node.state):
                    problems.append(f"node {node.node_id} covered by a non-weaker state")
                continue
            if node.location == self.program.error:
                continue
            for transition in self._outgoing.get(node.location, []):
                if (id(node), transition) in pending:
                    continue
                if any(child.incoming is transition for child in node.children):
                    continue
                if self.checker.edge_feasible(node.state, transition):
                    problems.append(
                        f"node {node.node_id}@{node.location} misses the feasible edge {transition}"
                    )
        return problems


# ----------------------------------------------------------------------
# The restart-the-world engine (compatibility wrapper / baseline)
# ----------------------------------------------------------------------
class AbstractReachability:
    """Builds a fresh abstract reachability tree under a given precision.

    This is the restart-the-world baseline: each :meth:`run` grows a new
    :class:`Art` from the initial location.  The incremental engine
    (:class:`~repro.core.engine.VerificationEngine`) keeps one tree alive
    across refinements instead.
    """

    def __init__(
        self,
        program: Program,
        checker: Optional[VcChecker] = None,
        max_nodes: int = 4000,
    ) -> None:
        self.program = program
        self.checker = checker or VcChecker()
        self.max_nodes = max_nodes
        #: The tree of the most recent run (inspectable by callers/tests).
        self.art: Optional[Art] = None

    def run(self, precision: Precision) -> ReachabilityOutcome:
        """Breadth-first abstract reachability from the initial location."""
        self.art = Art(self.program, self.checker, BfsFrontier())
        return self.art.explore(precision, ExploreLimits(max_nodes=self.max_nodes))
