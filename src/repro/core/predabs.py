"""Cartesian predicate abstraction and abstract reachability (Section 4.1).

The abstract-reachability phase of CEGAR unwinds the CFG into an abstract
reachability tree (ART).  Each node carries a location and an abstract state,
which here is the set of tracked predicates (from the location-indexed
precision ``Pi``) that are known to hold.  The abstract post operator is
Cartesian: each predicate of the target location is kept iff it is implied by
the source state and the transition relation, decided by the exact VC
checker.  Transitions whose source state contradicts their guard are pruned.

The predicates produced by path-invariant refinement are conjunctive per
location, so Cartesian abstraction is precise enough to reconstruct the
safety proofs of the paper's examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..lang.cfg import Location, Program, Transition
from ..lang.commands import command_writes
from ..logic.formulas import FALSE, Formula, TRUE, conjoin
from ..smt.vcgen import VcChecker

__all__ = ["Precision", "ArtNode", "AbstractReachability", "ReachabilityOutcome"]


class Precision:
    """Location-indexed predicate sets (the abstraction ``Pi`` of the paper)."""

    def __init__(self) -> None:
        self._predicates: dict[Location, set[Formula]] = {}

    def predicates_at(self, location: Location) -> frozenset[Formula]:
        return frozenset(self._predicates.get(location, set()))

    def add(self, location: Location, predicate: Formula) -> bool:
        """Add a predicate; returns True when it is new."""
        if predicate in (TRUE, FALSE):
            return False
        existing = self._predicates.setdefault(location, set())
        if predicate in existing:
            return False
        existing.add(predicate)
        return True

    def add_all(self, location: Location, predicates: Iterable[Formula]) -> int:
        return sum(1 for predicate in predicates if self.add(location, predicate))

    def total_predicates(self) -> int:
        return sum(len(preds) for preds in self._predicates.values())

    def locations(self) -> list[Location]:
        return sorted(self._predicates, key=lambda l: l.name)

    def copy(self) -> "Precision":
        clone = Precision()
        for location, predicates in self._predicates.items():
            clone._predicates[location] = set(predicates)
        return clone

    def __str__(self) -> str:
        lines = []
        for location in self.locations():
            rendered = ", ".join(sorted(str(p) for p in self._predicates[location]))
            lines.append(f"  Pi({location}) = {{ {rendered} }}")
        return "\n".join(lines) or "  (no predicates)"


@dataclass
class ArtNode:
    """A node of the abstract reachability tree."""

    location: Location
    state: frozenset[Formula]
    parent: Optional["ArtNode"] = None
    incoming: Optional[Transition] = None
    node_id: int = 0
    covered_by: Optional["ArtNode"] = None

    def state_formula(self) -> Formula:
        return conjoin(sorted(self.state, key=str))

    def path_from_root(self) -> list[Transition]:
        transitions: list[Transition] = []
        node: Optional[ArtNode] = self
        while node is not None and node.incoming is not None:
            transitions.append(node.incoming)
            node = node.parent
        transitions.reverse()
        return transitions


@dataclass
class ReachabilityOutcome:
    """Result of one abstract-reachability run."""

    #: None when the error location is unreachable in the abstraction.
    counterexample: Optional[list[Transition]]
    nodes_expanded: int
    nodes_created: int
    exhausted: bool = False  # True when the node budget was hit

    @property
    def is_safe(self) -> bool:
        return self.counterexample is None and not self.exhausted


class AbstractReachability:
    """Builds the abstract reachability tree under a given precision."""

    def __init__(
        self,
        program: Program,
        checker: Optional[VcChecker] = None,
        max_nodes: int = 4000,
    ) -> None:
        self.program = program
        self.checker = checker or VcChecker()
        self.max_nodes = max_nodes

    # ------------------------------------------------------------------
    def run(self, precision: Precision) -> ReachabilityOutcome:
        """Breadth-first abstract reachability from the initial location."""
        root = ArtNode(self.program.initial, frozenset(), node_id=0)
        worklist: list[ArtNode] = [root]
        # Subsumption index: the distinct abstract states already reached at
        # each location.  Coverage only needs the state sets, so checking a
        # new node scans the (few) distinct states instead of every node.
        reached: dict[Location, set[frozenset[Formula]]] = {
            self.program.initial: {root.state}
        }
        created = 1
        expanded = 0

        index = 0
        while index < len(worklist):
            node = worklist[index]
            index += 1
            if node.covered_by is not None:
                continue
            expanded += 1
            for transition in self.program.outgoing(node.location):
                successor_state = self.abstract_post(node, transition, precision)
                if successor_state is None:
                    continue  # the edge is infeasible from this abstract state
                child = ArtNode(
                    transition.target,
                    successor_state,
                    parent=node,
                    incoming=transition,
                    node_id=created,
                )
                created += 1
                if child.location == self.program.error:
                    return ReachabilityOutcome(child.path_from_root(), expanded, created)
                if self._is_covered(child, reached):
                    child.covered_by = child  # marker; the node is not expanded
                    continue
                reached.setdefault(child.location, set()).add(child.state)
                worklist.append(child)
                if created > self.max_nodes:
                    return ReachabilityOutcome(None, expanded, created, exhausted=True)
        return ReachabilityOutcome(None, expanded, created)

    # ------------------------------------------------------------------
    def abstract_post(
        self, node: ArtNode, transition: Transition, precision: Precision
    ) -> Optional[frozenset[Formula]]:
        """Cartesian abstract post; ``None`` when the edge is locally infeasible."""
        pre = node.state_formula()
        if self.checker.check_triple(pre, transition.commands, FALSE):
            return None
        written: set[str] = set()
        for command in transition.commands:
            written |= command_writes(command)
        successors: set[Formula] = set()
        for predicate in precision.predicates_at(transition.target):
            # Frame rule shortcut: a predicate that already holds and whose
            # variables/arrays are untouched by the transition keeps holding.
            if predicate in node.state:
                touched = {v.name for v in predicate.variables()} | predicate.arrays()
                if not touched & written:
                    successors.add(predicate)
                    continue
            if self.checker.check_triple(pre, transition.commands, predicate):
                successors.add(predicate)
        return frozenset(successors)

    @staticmethod
    def _is_covered(
        node: ArtNode, reached: dict[Location, set[frozenset[Formula]]]
    ) -> bool:
        """A node is covered by an existing node with a weaker abstract state.

        ``reached`` holds the distinct abstract states per location (nodes in
        the index are never covered later, so states alone suffice); an exact
        membership test catches the common duplicate-state case before the
        subset scan.
        """
        states = reached.get(node.location)
        if states is None:
            return False
        if node.state in states:
            return True
        return any(state.issubset(node.state) for state in states)
