"""Decision procedures: linear arithmetic, arrays-as-UF, quantifier handling."""

from .linear import LinConstraint, normalize_constraint, tighten_integer
from .fourier_motzkin import project, satisfiable
from .simplex import IncrementalSimplex, LPResult, LPStatus, feasible, solve_lp
from .lra import LraResult, LraSolver
from .arrays import CubeSolver, Store, resolve_stores
from .quant import eliminate_quantifiers, instantiate_positive, skolemize_negative
from .solver import SatResult, SmtSolver, SolverStats
from .ssa import SsaTranslation, ssa_translate, versioned
from .vcgen import PathFeasibility, VcChecker

__all__ = [
    "LinConstraint",
    "normalize_constraint",
    "tighten_integer",
    "project",
    "satisfiable",
    "IncrementalSimplex",
    "LPResult",
    "LPStatus",
    "feasible",
    "solve_lp",
    "LraResult",
    "LraSolver",
    "CubeSolver",
    "Store",
    "resolve_stores",
    "eliminate_quantifiers",
    "instantiate_positive",
    "skolemize_negative",
    "SatResult",
    "SmtSolver",
    "SolverStats",
    "SsaTranslation",
    "ssa_translate",
    "versioned",
    "PathFeasibility",
    "VcChecker",
]
