"""Pure linear constraints over scalar variables.

The decision procedures (Fourier–Motzkin, simplex) work on conjunctions of
constraints ``expr REL 0`` where ``expr`` mentions only :class:`Var` atoms and
``REL`` is one of ``<=``, ``<`` or ``=``.  Disequalities and array reads are
eliminated by the layers above (:mod:`repro.smt.solver`,
:mod:`repro.smt.arrays`) before constraints reach this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Sequence

from ..logic.formulas import Atom, Relation
from ..logic.terms import LinExpr, Var

__all__ = [
    "LinConstraint",
    "from_atom",
    "tighten_integer",
    "normalize_constraint",
    "constraints_variables",
    "is_trivial_true",
    "is_trivial_false",
]


@dataclass(frozen=True)
class LinConstraint:
    """A constraint ``expr rel 0`` with ``rel`` in ``{<=, <, =}``."""

    expr: LinExpr
    rel: Relation

    def __post_init__(self) -> None:
        if self.rel not in (Relation.LE, Relation.LT, Relation.EQ):
            raise ValueError(f"unsupported relation for LinConstraint: {self.rel}")
        for atom in self.expr.atoms():
            if not isinstance(atom, Var):
                raise ValueError(f"LinConstraint over non-variable atom: {atom}")

    def variables(self) -> set[Var]:
        return self.expr.variables()

    def __str__(self) -> str:
        return f"{self.expr} {self.rel.value} 0"


def from_atom(atom: Atom) -> LinConstraint:
    """Convert a (read-free, non-disequality) atom into a constraint."""
    if atom.rel is Relation.NE:
        raise ValueError("disequalities must be split before reaching LinConstraint")
    return LinConstraint(atom.expr, atom.rel)


def normalize_constraint(constraint: LinConstraint) -> LinConstraint:
    """Scale a constraint so that its coefficients are coprime integers."""
    expr = constraint.expr
    if not expr.terms:
        return constraint
    values = [coeff for _, coeff in expr.terms]
    if expr.const != 0:
        values.append(expr.const)
    lcm = 1
    for value in values:
        lcm = lcm * value.denominator // _gcd(lcm, value.denominator)
    scaled = [v * lcm for v in values]
    gcd = 0
    for value in scaled:
        gcd = _gcd(gcd, value.numerator)
    factor = Fraction(lcm, gcd) if gcd else Fraction(lcm)
    if factor == 1:
        return constraint
    return LinConstraint(expr.scale(factor), constraint.rel)


def tighten_integer(constraint: LinConstraint) -> LinConstraint:
    """Integer tightening of a normalised constraint.

    When every variable of the constraint ranges over the integers and the
    coefficients are integers, ``e < 0`` is equivalent to ``e <= -1`` and a
    fractional constant can be rounded:  ``e + c <= 0`` becomes
    ``e + ceil(c) <= 0``.  The tightening is an *equivalence* over integer
    valuations and a strengthening over rational valuations, so it must only
    be applied when all variables are known to be integral.
    """
    constraint = normalize_constraint(constraint)
    expr = constraint.expr
    if not expr.terms:
        return constraint
    if any(coeff.denominator != 1 for _, coeff in expr.terms):
        return constraint
    if constraint.rel is Relation.EQ:
        return constraint
    # Divide by the gcd of the variable coefficients and round the resulting
    # bound:  sum(a_v * v) REL -const  with all a_v divisible by g becomes
    # sum(a_v/g * v) <= floor(-const/g)  over the integers (with the strict
    # case rounding to the next smaller integer when the bound is integral).
    gcd = 0
    for _, coeff in expr.terms:
        gcd = _gcd(gcd, coeff.numerator)
    bound = -expr.const / gcd
    if constraint.rel is Relation.LT:
        tightened_bound = bound - 1 if bound.denominator == 1 else Fraction(_floor(bound))
    else:
        tightened_bound = Fraction(_floor(bound))
    new_terms = tuple((atom, coeff / gcd) for atom, coeff in expr.terms)
    new_expr = LinExpr(new_terms, -tightened_bound)
    return LinConstraint(new_expr, Relation.LE)


def _floor(value: Fraction) -> int:
    return value.numerator // value.denominator


def _ceil(value: Fraction) -> int:
    return -((-value.numerator) // value.denominator)


def _gcd(a: int, b: int) -> int:
    a, b = abs(a), abs(b)
    while b:
        a, b = b, a % b
    return a


def constraints_variables(constraints: Iterable[LinConstraint]) -> set[Var]:
    result: set[Var] = set()
    for constraint in constraints:
        result |= constraint.variables()
    return result


def is_trivial_true(constraint: LinConstraint) -> bool:
    expr = constraint.expr
    if expr.terms:
        return False
    if constraint.rel is Relation.LE:
        return expr.const <= 0
    if constraint.rel is Relation.LT:
        return expr.const < 0
    return expr.const == 0


def is_trivial_false(constraint: LinConstraint) -> bool:
    expr = constraint.expr
    if expr.terms:
        return False
    return not is_trivial_true(constraint)
