"""Quantifier handling for the array-property fragment.

The verification conditions of the paper contain universal quantifiers in two
positions:

* *negative* occurrences (a quantified assertion that must be established),
  which are skolemised — exactly the step "let ``k*`` be a fresh variable"
  from Section 4.2 — and
* *positive* occurrences (a quantified hypothesis), which are instantiated at
  the finitely many array-read index terms occurring elsewhere in the
  obligation, mirroring the paper's replacement of the quantified conjunct
  ``pi`` by its relevant instances.

Instantiating hypotheses at read terms is sound (it only weakens the
hypothesis) and, by the decidability result for the array property fragment
[Bradley–Manna–Sipma 2006] the paper builds on, sufficient for obligations in
the fragment targeted by the templates.
"""

from __future__ import annotations

from typing import Iterable

from ..logic.formulas import (
    And,
    Atom,
    BoolConst,
    Forall,
    Formula,
    Not,
    Or,
    TRUE,
    conjoin,
    disjoin,
    negate,
)
from ..logic.terms import ArrayRead, LinExpr, Var
from ..logic.transform import FreshNames
from .arrays import ground_reads

__all__ = [
    "skolemize_negative",
    "arrays_under_quantifier",
    "instantiation_terms",
    "instantiate_positive",
    "eliminate_quantifiers",
]


def skolemize_negative(formula: Formula, fresh: FreshNames) -> Formula:
    """Replace negative universal quantifiers by skolemised instances.

    ``Not(Forall(k, body))`` becomes ``Not(body[k := k_sk])`` for a fresh
    ``k_sk``; the transformation is equisatisfiable.
    """
    if isinstance(formula, (BoolConst, Atom)):
        return formula
    if isinstance(formula, And):
        return conjoin([skolemize_negative(arg, fresh) for arg in formula.args])
    if isinstance(formula, Or):
        return disjoin([skolemize_negative(arg, fresh) for arg in formula.args])
    if isinstance(formula, Forall):
        return Forall(formula.index, skolemize_negative(formula.body, fresh))
    if isinstance(formula, Not):
        inner = formula.arg
        if isinstance(inner, Forall):
            skolem = fresh.fresh(f"sk_{inner.index.name}")
            instance = inner.body.substitute({inner.index: LinExpr.make({skolem: 1})})
            return skolemize_negative(negate(instance), fresh)
        return negate(skolemize_negative(inner, fresh))
    raise TypeError(f"unexpected formula {formula!r}")


def arrays_under_quantifier(forall: Forall) -> set[str]:
    """Arrays read at the quantified index inside the body of ``forall``."""
    arrays: set[str] = set()
    for read in forall.body.array_reads():
        if forall.index in read.index.variables():
            arrays.add(read.array)
    return arrays


def instantiation_terms(
    formula: Formula, arrays: set[str], extra_terms: Iterable[LinExpr] = ()
) -> list[LinExpr]:
    """Candidate index terms for instantiating a hypothesis over ``arrays``.

    The candidates are the index expressions of all ground reads of the same
    base array anywhere in the obligation (base = the name before any ``@``
    version suffix), plus any explicitly supplied extra terms.
    """
    bases = {_base_name(a) for a in arrays}
    terms: list[LinExpr] = []
    seen: set[LinExpr] = set()
    for read in sorted(ground_reads(formula), key=str):
        if _base_name(read.array) not in bases:
            continue
        if read.index not in seen:
            seen.add(read.index)
            terms.append(read.index)
    for term in extra_terms:
        if term not in seen:
            seen.add(term)
            terms.append(term)
    return terms


def _base_name(array: str) -> str:
    return array.split("@", 1)[0]


def instantiate_positive(
    formula: Formula, context: Formula | None = None, rounds: int = 2
) -> Formula:
    """Replace positive universal quantifiers by finite instantiations.

    ``context`` (defaulting to ``formula`` itself) supplies the pool of array
    reads from which instantiation terms are drawn.  The replacement weakens
    the formula, so an UNSAT answer on the result carries over to the
    original formula.
    """
    pool = context if context is not None else formula
    current = formula
    for _ in range(rounds):
        replaced = _instantiate_once(current, pool)
        if replaced == current:
            return current
        current = replaced
        pool = current
    return current


def _instantiate_once(formula: Formula, pool: Formula) -> Formula:
    if isinstance(formula, (BoolConst, Atom)):
        return formula
    if isinstance(formula, And):
        return conjoin([_instantiate_once(arg, pool) for arg in formula.args])
    if isinstance(formula, Or):
        return disjoin([_instantiate_once(arg, pool) for arg in formula.args])
    if isinstance(formula, Not):
        return Not(_instantiate_once(formula.arg, pool))
    if isinstance(formula, Forall):
        arrays = arrays_under_quantifier(formula)
        terms = instantiation_terms(pool, arrays)
        if not terms:
            # No relevant read: the hypothesis contributes nothing (sound
            # weakening for unsatisfiability checking).
            return TRUE
        instances = [formula.instantiate(term) for term in terms]
        return conjoin(instances)
    raise TypeError(f"unexpected formula {formula!r}")


def eliminate_quantifiers(formula: Formula, fresh: FreshNames) -> Formula:
    """Full pipeline: skolemise negative, instantiate positive quantifiers.

    The result is quantifier-free.  Unsatisfiability of the result implies
    unsatisfiability of the input.
    """
    skolemized = skolemize_negative(formula, fresh)
    return instantiate_positive(skolemized)
