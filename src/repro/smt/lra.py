"""Conjunction-level linear-arithmetic solving.

This module drives the incremental simplex engine
(:class:`~repro.smt.simplex.IncrementalSimplex`) and adds the
integer-specific reasoning the verifier needs:

* *integer tightening* — for constraints whose variables all range over the
  integers, a strict inequality ``e < 0`` is replaced by ``e <= -1``; this is
  both sound and complete over integer valuations and is what allows e.g.
  ``i < n`` to justify the array-bound ``i <= n - 1``;
* *bounded branch and bound* — when a rational witness assigns a fractional
  value to an integer variable, the solver splits on ``x <= floor(v)`` versus
  ``x >= floor(v)+1``.  The branches are explored with ``push``/``pop`` on a
  shared tableau, so each branch only flips one bound.  Counterexample
  feasibility checks use this to avoid reporting bugs whose path formulas are
  only rationally satisfiable (the FORWARD path formula is the canonical
  example).

The module-level helpers :func:`assert_atoms` and :func:`integer_feasible`
are shared with the lazy case-splitting SMT core in :mod:`repro.smt.solver`,
which keeps one persistent :class:`IncrementalSimplex` across a whole
case-split tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Sequence

from ..logic.formulas import Atom, Relation
from ..logic.terms import LinExpr, Var, register_intern_cache
from .linear import LinConstraint, normalize_constraint, tighten_integer
from .simplex import IncrementalSimplex

__all__ = ["LraSolver", "LraResult", "assert_atoms", "integer_feasible", "prepare_atom"]


@dataclass
class LraResult:
    """Outcome of a conjunction query."""

    satisfiable: bool
    model: Optional[dict[Var, Fraction]] = None
    #: True when the answer required giving up (e.g. branch-and-bound budget
    #: exhausted); the reported answer is then the sound over-approximation
    #: "satisfiable".
    approximate: bool = False


#: Memoised atom -> prepared constraint, keyed on the interned atom.  The
#: sentinels are ``True`` (trivially true, skip) and ``False`` (trivially
#: false, conflict).  Hash-consing makes the key a pointer hash, so the hot
#: case-splitting paths re-prepare each distinct atom only once per process.
#: Dropped together with the interning tables by ``clear_intern_caches`` so
#: retired formula generations are not pinned in memory.
_prepared: dict[tuple[Atom, bool], "LinConstraint | bool"] = {}
register_intern_cache(_prepared.clear)


def prepare_atom(atom: Atom, integer_mode: bool) -> "LinConstraint | bool":
    """Normalise (and in integer mode tighten) an atom for the simplex."""
    key = (atom, integer_mode)
    cached = _prepared.get(key)
    if cached is None:
        if atom.is_trivially_true():
            cached = True
        elif atom.is_trivially_false():
            cached = False
        else:
            constraint = normalize_constraint(LinConstraint(atom.expr, atom.rel))
            if integer_mode:
                constraint = tighten_integer(constraint)
            cached = constraint
        _prepared[key] = cached
    return cached


def assert_atoms(
    simplex: IncrementalSimplex, atoms: Sequence[Atom], integer_mode: bool
) -> bool:
    """Assert a conjunction of (read-free) atoms; False on conflict.

    Disequalities must have been split by the caller.  Constraints are
    normalised and, in integer mode, tightened before they reach the
    simplex.
    """
    for atom in atoms:
        if atom.rel is Relation.NE:
            raise ValueError("disequalities must be split before the LRA solver")
        prepared = prepare_atom(atom, integer_mode)
        if prepared is True:
            continue
        if prepared is False:
            return False
        if not simplex.assert_constraint(prepared.expr, prepared.rel):
            return False
    return True


def _fractional_variable(
    model: dict[Var, Fraction]
) -> Optional[tuple[Var, Fraction]]:
    for variable, value in sorted(model.items()):
        if value.denominator != 1:
            return variable, value
    return None


def integer_feasible(
    simplex: IncrementalSimplex, budget: int, integer_mode: bool = True
) -> LraResult:
    """Feasibility of the simplex's current bounds, with integer refinement.

    Rational feasibility is decided first; in integer mode, fractional
    witnesses are repaired by bounded branch and bound over ``push``/``pop``
    scopes of the shared tableau.  When the budget runs out the result is the
    sound over-approximation "satisfiable" flagged ``approximate`` (proofs
    only rely on UNSAT answers).
    """
    if not simplex.check():
        return LraResult(False)
    model = simplex.model()
    if not integer_mode:
        return LraResult(True, model)
    fractional = _fractional_variable(model)
    if fractional is None:
        return LraResult(True, model)
    if budget <= 0:
        return LraResult(True, model, approximate=True)
    variable, value = fractional
    floor = Fraction(value.numerator // value.denominator)
    branches = (
        LinExpr.variable(variable) - LinExpr.constant(floor),       # x <= floor
        LinExpr.constant(floor + 1) - LinExpr.variable(variable),   # x >= floor + 1
    )
    for branch in branches:
        simplex.push()
        try:
            if simplex.assert_constraint(branch, Relation.LE):
                result = integer_feasible(simplex, budget // 2, integer_mode)
                if result.satisfiable:
                    return result
        finally:
            simplex.pop()
    return LraResult(False)


class LraSolver:
    """Satisfiability of conjunctions of linear atoms over scalar variables.

    One persistent :class:`IncrementalSimplex` serves every query: each
    :meth:`check` runs inside a ``push``/``pop`` scope, so the slack-variable
    interning and the tableau rows built for one conjunction are reused by
    the next (re-asserting a previously seen linear form is a dictionary
    lookup instead of a row construction).
    """

    def __init__(self, integer_mode: bool = True, bb_limit: int = 40) -> None:
        self.integer_mode = integer_mode
        self.bb_limit = bb_limit
        #: Number of conjunction feasibility queries answered.
        self.num_checks = 0
        #: Underlying simplex feasibility checks (branch-and-bound included).
        self.num_simplex_checks = 0
        self._simplex = IncrementalSimplex()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def check(self, atoms: Sequence[Atom]) -> LraResult:
        """Check satisfiability of a conjunction of (read-free) atoms.

        Disequalities must have been split by the caller.  Equalities, strict
        and non-strict inequalities are accepted.
        """
        self.num_checks += 1
        simplex = self._simplex
        checks_before = simplex.num_checks
        simplex.push()
        try:
            if not assert_atoms(simplex, atoms, self.integer_mode):
                return LraResult(False)
            return integer_feasible(simplex, self.bb_limit, self.integer_mode)
        finally:
            self.num_simplex_checks += simplex.num_checks - checks_before
            simplex.pop()

    def entails(self, antecedent: Sequence[Atom], consequent: Atom) -> bool:
        """Does the conjunction of ``antecedent`` imply ``consequent``?

        Entailment is decided over the rationals (with integer tightening of
        the hypotheses when integer mode is on), which is sound for integer
        semantics.  Disequality consequents are handled by case distinction.
        """
        if consequent.rel is Relation.NE:
            # a != 0  is entailed iff  (a < 0) or (a > 0) is entailed ... which
            # cannot be decided by two separate entailments in general, so fall
            # back to unsatisfiability of the negation (an equality).
            negated = [Atom(consequent.expr, Relation.EQ)]
        elif consequent.rel is Relation.EQ:
            return self.entails(antecedent, Atom(consequent.expr, Relation.LE)) and self.entails(
                antecedent, Atom(-consequent.expr, Relation.LE)
            )
        else:
            negated = [consequent.negated()]
        return not self.check(list(antecedent) + negated).satisfiable
