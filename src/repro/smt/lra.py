"""Conjunction-level linear-arithmetic solving.

This module glues together the Fourier–Motzkin and simplex engines and adds
the integer-specific reasoning the verifier needs:

* *integer tightening* — for constraints whose variables all range over the
  integers, a strict inequality ``e < 0`` is replaced by ``e <= -1``; this is
  both sound and complete over integer valuations and is what allows e.g.
  ``i < n`` to justify the array-bound ``i <= n - 1``;
* *bounded branch and bound* — when a rational witness assigns a fractional
  value to an integer variable, the solver splits on ``x <= floor(v)`` versus
  ``x >= floor(v)+1``.  Counterexample-feasibility checks use this to avoid
  reporting bugs whose path formulas are only rationally satisfiable (the
  FORWARD path formula is the canonical example).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Sequence

from ..logic.formulas import Atom, Relation
from ..logic.terms import LinExpr, Var
from . import fourier_motzkin, simplex
from .linear import LinConstraint, normalize_constraint, tighten_integer

__all__ = ["LraSolver", "LraResult"]

#: Above this many constraints the solver prefers simplex over Fourier–Motzkin.
_FM_CONSTRAINT_LIMIT = 60
_FM_VARIABLE_LIMIT = 28


@dataclass
class LraResult:
    """Outcome of a conjunction query."""

    satisfiable: bool
    model: Optional[dict[Var, Fraction]] = None
    #: True when the answer required giving up (e.g. branch-and-bound budget
    #: exhausted); the reported answer is then the sound over-approximation
    #: "satisfiable".
    approximate: bool = False


class LraSolver:
    """Satisfiability of conjunctions of linear atoms over scalar variables."""

    def __init__(self, integer_mode: bool = True, bb_limit: int = 40) -> None:
        self.integer_mode = integer_mode
        self.bb_limit = bb_limit

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def check(self, atoms: Sequence[Atom]) -> LraResult:
        """Check satisfiability of a conjunction of (read-free) atoms.

        Disequalities must have been split by the caller.  Equalities, strict
        and non-strict inequalities are accepted.
        """
        constraints = self._to_constraints(atoms)
        if constraints is None:
            return LraResult(False)
        model = self._rational_check(constraints)
        if model is None:
            return LraResult(False)
        if not self.integer_mode:
            return LraResult(True, model)
        return self._integer_check(constraints, model, self.bb_limit)

    def entails(self, antecedent: Sequence[Atom], consequent: Atom) -> bool:
        """Does the conjunction of ``antecedent`` imply ``consequent``?

        Entailment is decided over the rationals (with integer tightening of
        the hypotheses when integer mode is on), which is sound for integer
        semantics.  Disequality consequents are handled by case distinction.
        """
        if consequent.rel is Relation.NE:
            # a != 0  is entailed iff  (a < 0) or (a > 0) is entailed ... which
            # cannot be decided by two separate entailments in general, so fall
            # back to unsatisfiability of the negation (an equality).
            negated = [Atom(consequent.expr, Relation.EQ)]
        elif consequent.rel is Relation.EQ:
            return self.entails(antecedent, Atom(consequent.expr, Relation.LE)) and self.entails(
                antecedent, Atom(-consequent.expr, Relation.LE)
            )
        else:
            negated = [consequent.negated()]
        return not self.check(list(antecedent) + negated).satisfiable

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _to_constraints(self, atoms: Sequence[Atom]) -> Optional[list[LinConstraint]]:
        constraints: list[LinConstraint] = []
        for atom in atoms:
            if atom.rel is Relation.NE:
                raise ValueError("disequalities must be split before the LRA solver")
            if atom.is_trivially_false():
                return None
            if atom.is_trivially_true():
                continue
            constraint = LinConstraint(atom.expr, atom.rel)
            constraint = normalize_constraint(constraint)
            if self.integer_mode:
                constraint = tighten_integer(constraint)
            constraints.append(constraint)
        return constraints

    def _rational_check(
        self, constraints: list[LinConstraint]
    ) -> Optional[dict[Var, Fraction]]:
        variables = {v for c in constraints for v in c.variables()}
        use_fm = (
            len(constraints) <= _FM_CONSTRAINT_LIMIT and len(variables) <= _FM_VARIABLE_LIMIT
        )
        has_strict = any(c.rel is Relation.LT for c in constraints)
        if use_fm or has_strict:
            return fourier_motzkin.satisfiable(constraints)
        return simplex.feasible(constraints)

    def _integer_check(
        self,
        constraints: list[LinConstraint],
        model: dict[Var, Fraction],
        budget: int,
    ) -> LraResult:
        fractional = self._fractional_variable(model)
        if fractional is None:
            return LraResult(True, model)
        if budget <= 0:
            # Give up: report satisfiable (sound over-approximation for the
            # uses of this solver: proofs only rely on UNSAT answers).
            return LraResult(True, model, approximate=True)
        var, value = fractional
        floor = Fraction(value.numerator // value.denominator)
        lower_branch = constraints + [
            LinConstraint(LinExpr.variable(var) - LinExpr.constant(floor), Relation.LE)
        ]
        upper_branch = constraints + [
            LinConstraint(
                LinExpr.constant(floor + 1) - LinExpr.variable(var), Relation.LE
            )
        ]
        for branch in (lower_branch, upper_branch):
            branch_model = self._rational_check(branch)
            if branch_model is None:
                continue
            result = self._integer_check(branch, branch_model, budget // 2)
            if result.satisfiable:
                return result
        return LraResult(False)

    @staticmethod
    def _fractional_variable(
        model: dict[Var, Fraction]
    ) -> Optional[tuple[Var, Fraction]]:
        for var, value in sorted(model.items()):
            if value.denominator != 1:
                return var, value
        return None
