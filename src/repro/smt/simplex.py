"""Exact simplex engines over rationals.

Two engines live here.

1. :class:`IncrementalSimplex` — a sparse, incremental feasibility engine in
   the style of Dutertre and de Moura's "A Fast Linear-Arithmetic Solver for
   DPLL(T)".  Constraints are asserted as *bounds* on problem or slack
   variables; the tableau (one row per slack variable, interned by linear
   form) is persistent, and ``push``/``pop`` only save and restore bounds.
   This is what makes the lazy case-splitting SMT core cheap: sibling cubes
   of a case split share the whole tableau prefix and only flip a few bounds.
   Strict inequalities are handled exactly with delta-rationals
   ``a + b*delta`` (an infinitesimal positive ``delta``), so no separate
   Fourier–Motzkin pass is needed for satisfiability.

2. :func:`solve_lp` — the original batch two-phase primal simplex, kept as
   the LP *optimisation* back end (it supports objectives, which the
   incremental engine does not need).  Free variables are split into
   differences of non-negative variables, every row is equipped with a slack
   or artificial variable so that the all-slack/artificial basis is feasible,
   and Bland's rule is used for pivot selection, which guarantees
   termination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Optional, Sequence

from ..logic.formulas import Relation
from ..logic.terms import LinExpr, Var
from .linear import LinConstraint

__all__ = [
    "LPStatus",
    "LPResult",
    "solve_lp",
    "feasible",
    "IncrementalSimplex",
]

# ----------------------------------------------------------------------
# Delta-rationals: pairs (a, b) denoting a + b*delta for an infinitesimal
# positive delta.  Python's lexicographic tuple comparison implements the
# right total order, so plain tuples are used for speed.
# ----------------------------------------------------------------------
_ZERO = Fraction(0)
_DZERO = (_ZERO, _ZERO)


class IncrementalSimplex:
    """Sparse incremental simplex with bound assertions and push/pop.

    Variables are problem variables and slack variables; each *distinct
    linear form* (canonicalised to leading coefficient ``+1``) gets exactly
    one slack variable whose tableau row is permanent.  Asserting a
    constraint only tightens a bound, so re-asserting the same form after a
    ``pop`` — which is what sibling cubes of a case split do — costs a
    dictionary lookup instead of a tableau rebuild.

    Statistics counters: ``num_checks`` (feasibility checks), ``num_pivots``,
    ``num_pushes``, ``num_slack_vars``, ``num_slack_reuses``.
    """

    def __init__(self) -> None:
        #: basic var -> {nonbasic var: coeff}; invariant basic = sum(row).
        self._rows: dict[Var, dict[Var, Fraction]] = {}
        #: nonbasic var -> set of basic vars whose row mentions it.
        self._cols: dict[Var, set[Var]] = {}
        #: current assignment, as delta-rational pairs.
        self._values: dict[Var, tuple[Fraction, Fraction]] = {}
        self._lower: dict[Var, tuple[Fraction, Fraction]] = {}
        self._upper: dict[Var, tuple[Fraction, Fraction]] = {}
        #: canonical linear form -> its slack variable.
        self._slack_of_form: dict[tuple, Var] = {}
        #: Bland-rule total order on variables (creation order).
        self._var_ids: dict[Var, int] = {}
        #: undo log of bound changes: (which, var, old bound or None).
        self._trail: list[tuple[str, Var, Optional[tuple[Fraction, Fraction]]]] = []
        self._marks: list[tuple[int, bool]] = []
        self._conflict = False
        self.num_checks = 0
        self.num_pivots = 0
        self.num_pushes = 0
        self.num_slack_vars = 0
        self.num_slack_reuses = 0
        #: conflicts decided at assertion time (crossing bounds), i.e.
        #: feasibility decisions that never needed a pivot loop.
        self.num_assert_conflicts = 0

    # ------------------------------------------------------------------
    # Assertions
    # ------------------------------------------------------------------
    def push(self) -> None:
        """Open a backtracking point (bounds only; the tableau persists)."""
        self.num_pushes += 1
        self._marks.append((len(self._trail), self._conflict))

    def pop(self) -> None:
        """Undo all bound assertions since the matching :meth:`push`."""
        mark, conflict = self._marks.pop()
        trail = self._trail
        while len(trail) > mark:
            which, variable, old = trail.pop()
            bounds = self._lower if which == "l" else self._upper
            if old is None:
                del bounds[variable]
            else:
                bounds[variable] = old
        self._conflict = conflict

    def assert_constraint(self, expr: LinExpr, rel: Relation) -> bool:
        """Assert ``expr rel 0`` (``rel`` in LE/LT/EQ); False on conflict.

        A returned conflict is recorded and sticky until the enclosing
        ``pop``; further checks fail fast.
        """
        if rel is Relation.NE:
            raise ValueError("disequalities must be split before the simplex")
        terms = expr.terms
        const = expr.const
        if not terms:
            holds = rel.holds(const)
            if not holds:
                self._conflict = True
            return holds

        if len(terms) == 1:
            variable, coeff = terms[0]
            bound = -const / coeff
            flip = coeff < 0
        else:
            lead = terms[0][1]
            key = tuple((v, c / lead) for v, c in terms)
            variable = self._slack_of_form.get(key)
            if variable is None:
                variable = self._new_slack(key)
            else:
                self.num_slack_reuses += 1
            bound = -const / lead
            flip = lead < 0

        if rel is Relation.EQ:
            ok = self._assert_upper(variable, (bound, _ZERO))
            return self._assert_lower(variable, (bound, _ZERO)) and ok
        strict = rel is Relation.LT
        if flip:
            # coeff < 0:  c*x <= -const  ==>  x >= bound (strictly for LT).
            return self._assert_lower(variable, (bound, Fraction(1) if strict else _ZERO))
        return self._assert_upper(variable, (bound, Fraction(-1) if strict else _ZERO))

    def _register(self, variable: Var) -> None:
        if variable not in self._var_ids:
            self._var_ids[variable] = len(self._var_ids)
            self._values[variable] = _DZERO
            self._cols.setdefault(variable, set())

    def _new_slack(self, form: tuple) -> Var:
        self.num_slack_vars += 1
        slack = Var(f"slk#{self.num_slack_vars}")
        # Define slack = sum(form), substituting currently-basic variables by
        # their rows so the new row mentions only nonbasic variables.
        row: dict[Var, Fraction] = {}
        value_a = _ZERO
        value_b = _ZERO
        for variable, coeff in form:
            self._register(variable)
            basic_row = self._rows.get(variable)
            if basic_row is None:
                row[variable] = row.get(variable, _ZERO) + coeff
            else:
                for inner, inner_coeff in basic_row.items():
                    row[inner] = row.get(inner, _ZERO) + coeff * inner_coeff
            va, vb = self._values[variable]
            value_a += coeff * va
            value_b += coeff * vb
        row = {v: c for v, c in row.items() if c != 0}
        self._var_ids[slack] = len(self._var_ids)
        self._values[slack] = (value_a, value_b)
        self._rows[slack] = row
        for variable in row:
            self._cols.setdefault(variable, set()).add(slack)
        self._slack_of_form[form] = slack
        return slack

    def _assert_lower(self, variable: Var, bound: tuple[Fraction, Fraction]) -> bool:
        self._register(variable)
        old = self._lower.get(variable)
        if old is not None and old >= bound:
            return not self._conflict
        self._trail.append(("l", variable, old))
        self._lower[variable] = bound
        upper = self._upper.get(variable)
        if upper is not None and upper < bound:
            self._conflict = True
            self.num_assert_conflicts += 1
            return False
        if variable not in self._rows and self._values[variable] < bound:
            self._update_nonbasic(variable, bound)
        return not self._conflict

    def _assert_upper(self, variable: Var, bound: tuple[Fraction, Fraction]) -> bool:
        self._register(variable)
        old = self._upper.get(variable)
        if old is not None and old <= bound:
            return not self._conflict
        self._trail.append(("u", variable, old))
        self._upper[variable] = bound
        lower = self._lower.get(variable)
        if lower is not None and lower > bound:
            self._conflict = True
            self.num_assert_conflicts += 1
            return False
        if variable not in self._rows and self._values[variable] > bound:
            self._update_nonbasic(variable, bound)
        return not self._conflict

    def _update_nonbasic(self, variable: Var, value: tuple[Fraction, Fraction]) -> None:
        old_a, old_b = self._values[variable]
        delta_a = value[0] - old_a
        delta_b = value[1] - old_b
        self._values[variable] = value
        rows = self._rows
        values = self._values
        for basic in self._cols.get(variable, ()):
            coeff = rows[basic].get(variable)
            if coeff is None:
                continue
            va, vb = values[basic]
            values[basic] = (va + coeff * delta_a, vb + coeff * delta_b)

    # ------------------------------------------------------------------
    # Feasibility
    # ------------------------------------------------------------------
    def check(self) -> bool:
        """Restore feasibility of the current bounds; True iff satisfiable."""
        self.num_checks += 1
        if self._conflict:
            return False
        rows = self._rows
        values = self._values
        lower = self._lower
        upper = self._upper
        ids = self._var_ids
        while True:
            # Bland's rule: smallest violating basic variable.
            candidate: Optional[Var] = None
            candidate_id = -1
            need_raise = False
            for basic in rows:
                value = values[basic]
                low = lower.get(basic)
                if low is not None and value < low:
                    if candidate is None or ids[basic] < candidate_id:
                        candidate, candidate_id, need_raise = basic, ids[basic], True
                    continue
                up = upper.get(basic)
                if up is not None and value > up:
                    if candidate is None or ids[basic] < candidate_id:
                        candidate, candidate_id, need_raise = basic, ids[basic], False
            if candidate is None:
                return True
            row = rows[candidate]
            target = lower[candidate] if need_raise else upper[candidate]
            entering: Optional[Var] = None
            entering_id = -1
            for nonbasic, coeff in row.items():
                increase = (coeff > 0) == need_raise
                if increase:
                    up = upper.get(nonbasic)
                    suitable = up is None or values[nonbasic] < up
                else:
                    low = lower.get(nonbasic)
                    suitable = low is None or values[nonbasic] > low
                if suitable and (entering is None or ids[nonbasic] < entering_id):
                    entering = nonbasic
                    entering_id = ids[nonbasic]
            if entering is None:
                return False
            self._pivot_and_update(candidate, entering, target)

    def _pivot_and_update(
        self, basic: Var, entering: Var, target: tuple[Fraction, Fraction]
    ) -> None:
        self.num_pivots += 1
        rows = self._rows
        values = self._values
        row = rows.pop(basic)
        coeff = row.pop(entering)
        va, vb = values[basic]
        theta = ((target[0] - va) / coeff, (target[1] - vb) / coeff)
        values[basic] = target
        ea, eb = values[entering]
        values[entering] = (ea + theta[0], eb + theta[1])
        for other in self._cols[entering]:
            if other is basic or other not in rows:
                continue
            other_coeff = rows[other].get(entering)
            if other_coeff is None:
                continue
            oa, ob = values[other]
            values[other] = (oa + other_coeff * theta[0], ob + other_coeff * theta[1])

        # Row for the entering variable: entering = (basic - sum(rest)) / coeff.
        inv = Fraction(1) / coeff
        new_row: dict[Var, Fraction] = {basic: inv}
        for variable, c in row.items():
            new_row[variable] = -c * inv
            self._cols[variable].discard(basic)
        cols = self._cols
        cols.setdefault(basic, set())

        # Substitute the entering variable out of every other row.
        for other in list(cols.get(entering, ())):
            if other not in rows:
                continue
            other_row = rows[other]
            factor = other_row.pop(entering, None)
            if factor is None:
                continue
            for variable, c in new_row.items():
                merged = other_row.get(variable, _ZERO) + factor * c
                if merged == 0:
                    if variable in other_row:
                        del other_row[variable]
                        cols[variable].discard(other)
                else:
                    other_row[variable] = merged
                    cols.setdefault(variable, set()).add(other)

        rows[entering] = new_row
        cols[entering] = set()
        for variable in new_row:
            cols.setdefault(variable, set()).add(entering)

    # ------------------------------------------------------------------
    # Models
    # ------------------------------------------------------------------
    def model(self) -> dict[Var, Fraction]:
        """A concrete rational witness for the current (feasible) bounds.

        Delta-rational values are concretised by choosing a rational
        ``delta`` small enough that every asserted bound stays satisfied.
        Variables that no *active* bound constrains — directly or through
        the form of a bounded slack — are reported rounded to integers:
        their tableau values are stale leftovers of popped branches, any
        value is valid for them, and handing out fractional leftovers would
        send integer branch-and-bound chasing variables that do not matter.
        """
        delta = Fraction(1)
        values = self._values
        lower = self._lower
        upper = self._upper
        for variable, (ba, bb) in lower.items():
            va, vb = values[variable]
            if ba < va and bb > vb:
                delta = min(delta, (va - ba) / (bb - vb))
        for variable, (ba, bb) in upper.items():
            va, vb = values[variable]
            if va < ba and vb > bb:
                delta = min(delta, (ba - va) / (vb - bb))
        relevant: set[Var] = set()
        for form, slack in self._slack_of_form.items():
            if slack in lower or slack in upper:
                for variable, _ in form:
                    relevant.add(variable)
        for bounds in (lower, upper):
            for variable in bounds:
                if not variable.name.startswith("slk#"):
                    relevant.add(variable)
        model: dict[Var, Fraction] = {}
        for variable, (a, b) in values.items():
            if variable.name.startswith("slk#"):
                continue
            if variable in relevant:
                model[variable] = a + b * delta
            else:
                model[variable] = Fraction(a.numerator // a.denominator)
        return model

    def in_conflict(self) -> bool:
        return self._conflict


class LPStatus:
    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"


@dataclass
class LPResult:
    status: str
    objective: Optional[Fraction] = None
    assignment: dict[Var, Fraction] = field(default_factory=dict)

    @property
    def is_feasible(self) -> bool:
        return self.status in (LPStatus.OPTIMAL, LPStatus.UNBOUNDED)


def solve_lp(
    constraints: Sequence[LinConstraint],
    objective: Optional[LinExpr] = None,
    maximize: bool = True,
) -> LPResult:
    """Solve ``max/min objective`` subject to the constraints.

    With ``objective=None`` only feasibility is decided (the returned
    objective value is then ``0``).  Strict inequalities are rejected; callers
    either tighten them (integer mode) or use Fourier–Motzkin.
    """
    for constraint in constraints:
        if constraint.rel is Relation.LT:
            raise ValueError("simplex does not accept strict inequalities")

    variables = sorted({v for c in constraints for v in c.variables()})
    if objective is not None:
        variables = sorted(set(variables) | objective.variables())
    var_index = {v: i for i, v in enumerate(variables)}
    num_struct = 2 * len(variables)  # x = x+ - x-

    rows: list[list[Fraction]] = []
    rhs: list[Fraction] = []
    rels: list[Relation] = []
    for constraint in constraints:
        row = [Fraction(0)] * num_struct
        for atom, coeff in constraint.expr.terms:
            idx = var_index[atom]  # type: ignore[index]
            row[2 * idx] += coeff
            row[2 * idx + 1] -= coeff
        rows.append(row)
        rhs.append(-constraint.expr.const)
        rels.append(constraint.rel)

    # Add slack variables for <= rows.
    num_slack = sum(1 for rel in rels if rel is Relation.LE)
    slack_base = num_struct
    slack_idx = 0
    for i, rel in enumerate(rels):
        rows[i] = rows[i] + [Fraction(0)] * num_slack
        if rel is Relation.LE:
            rows[i][slack_base + slack_idx] = Fraction(1)
            slack_idx += 1
    num_cols = num_struct + num_slack

    # Make all right-hand sides non-negative.
    for i in range(len(rows)):
        if rhs[i] < 0:
            rows[i] = [-value for value in rows[i]]
            rhs[i] = -rhs[i]

    # Choose a starting basis: a slack column with coefficient +1, otherwise an
    # artificial variable.
    basis: list[int] = []
    artificial_cols: list[int] = []
    for i in range(len(rows)):
        basic_col = None
        for j in range(slack_base, num_cols):
            if rows[i][j] == 1 and all(
                rows[k][j] == 0 for k in range(len(rows)) if k != i
            ):
                basic_col = j
                break
        if basic_col is None:
            for row in rows:
                row.append(Fraction(0))
            rows[i][num_cols] = Fraction(1)
            basic_col = num_cols
            artificial_cols.append(num_cols)
            num_cols += 1
        basis.append(basic_col)

    # ------------------------------------------------------------------
    # Phase 1: drive artificial variables to zero.
    # ------------------------------------------------------------------
    if artificial_cols:
        phase1_cost = [Fraction(0)] * num_cols
        for col in artificial_cols:
            phase1_cost[col] = Fraction(-1)
        status, value = _simplex(rows, rhs, basis, phase1_cost)
        assert status != LPStatus.UNBOUNDED
        if value < 0:
            return LPResult(LPStatus.INFEASIBLE)
        _drive_out_artificials(rows, rhs, basis, artificial_cols, num_struct)
        # Remove artificial columns (none is basic at a nonzero value now).
        keep = [j for j in range(num_cols) if j not in set(artificial_cols)]
        col_map = {old: new for new, old in enumerate(keep)}
        for i in range(len(rows)):
            rows[i] = [rows[i][j] for j in keep]
        new_basis = []
        surviving_rows = []
        new_rhs = []
        for i, b in enumerate(basis):
            if b in col_map:
                new_basis.append(col_map[b])
                surviving_rows.append(rows[i])
                new_rhs.append(rhs[i])
            # Rows whose basic variable is still an artificial are redundant
            # (the artificial sits at value zero in an all-zero row).
        rows = surviving_rows
        rhs = new_rhs
        basis = new_basis
        num_cols = len(keep)

    # ------------------------------------------------------------------
    # Phase 2: optimise the real objective (or stop after feasibility).
    # ------------------------------------------------------------------
    cost = [Fraction(0)] * num_cols
    objective_const = Fraction(0)
    if objective is not None:
        sign = Fraction(1) if maximize else Fraction(-1)
        objective_const = objective.const
        for atom, coeff in objective.terms:
            idx = var_index[atom]  # type: ignore[index]
            cost[2 * idx] += sign * coeff
            cost[2 * idx + 1] -= sign * coeff
        status, value = _simplex(rows, rhs, basis, cost)
        if status == LPStatus.UNBOUNDED:
            return LPResult(LPStatus.UNBOUNDED, None, _assignment(variables, basis, rhs))
    else:
        value = Fraction(0)

    assignment = _assignment(variables, basis, rhs)
    objective_value = None
    if objective is not None:
        raw = value if maximize else -value
        objective_value = raw + objective_const
    return LPResult(LPStatus.OPTIMAL, objective_value, assignment)


def feasible(constraints: Sequence[LinConstraint]) -> Optional[dict[Var, Fraction]]:
    """Feasibility check; returns a witness assignment or ``None``."""
    result = solve_lp(constraints, objective=None)
    if not result.is_feasible:
        return None
    return result.assignment


def _assignment(
    variables: Sequence[Var], basis: Sequence[int], rhs: Sequence[Fraction]
) -> dict[Var, Fraction]:
    values = {col: rhs[i] for i, col in enumerate(basis)}
    assignment: dict[Var, Fraction] = {}
    for idx, variable in enumerate(variables):
        positive = values.get(2 * idx, Fraction(0))
        negative = values.get(2 * idx + 1, Fraction(0))
        assignment[variable] = positive - negative
    return assignment


def _simplex(
    rows: list[list[Fraction]],
    rhs: list[Fraction],
    basis: list[int],
    cost: list[Fraction],
) -> tuple[str, Fraction]:
    """Primal simplex with Bland's rule on an explicitly maintained tableau."""
    num_rows = len(rows)
    num_cols = len(cost)
    while True:
        basis_set = set(basis)
        entering = None
        for j in range(num_cols):
            if j in basis_set:
                continue
            reduced = cost[j] - sum(cost[basis[i]] * rows[i][j] for i in range(num_rows))
            if reduced > 0:
                entering = j
                break
        if entering is None:
            value = sum(cost[basis[i]] * rhs[i] for i in range(num_rows))
            return LPStatus.OPTIMAL, value
        # Ratio test (Bland's rule tie break: smallest basic variable index).
        leaving = None
        best_ratio: Optional[Fraction] = None
        for i in range(num_rows):
            coeff = rows[i][entering]
            if coeff > 0:
                ratio = rhs[i] / coeff
                if (
                    best_ratio is None
                    or ratio < best_ratio
                    or (ratio == best_ratio and basis[i] < basis[leaving])
                ):
                    best_ratio = ratio
                    leaving = i
        if leaving is None:
            return LPStatus.UNBOUNDED, Fraction(0)
        _pivot(rows, rhs, basis, leaving, entering)


def _pivot(
    rows: list[list[Fraction]],
    rhs: list[Fraction],
    basis: list[int],
    pivot_row: int,
    pivot_col: int,
) -> None:
    pivot_value = rows[pivot_row][pivot_col]
    rows[pivot_row] = [value / pivot_value for value in rows[pivot_row]]
    rhs[pivot_row] = rhs[pivot_row] / pivot_value
    for i in range(len(rows)):
        if i == pivot_row:
            continue
        factor = rows[i][pivot_col]
        if factor == 0:
            continue
        rows[i] = [
            rows[i][j] - factor * rows[pivot_row][j] for j in range(len(rows[i]))
        ]
        rhs[i] = rhs[i] - factor * rhs[pivot_row]
    basis[pivot_row] = pivot_col


def _drive_out_artificials(
    rows: list[list[Fraction]],
    rhs: list[Fraction],
    basis: list[int],
    artificial_cols: list[int],
    num_real_cols: int,
) -> None:
    """Pivot basic artificial variables (at value zero) out of the basis."""
    artificial = set(artificial_cols)
    for i in range(len(rows)):
        if basis[i] not in artificial:
            continue
        pivot_col = None
        for j in range(len(rows[i])):
            if j in artificial:
                continue
            if rows[i][j] != 0:
                pivot_col = j
                break
        if pivot_col is not None:
            _pivot(rows, rhs, basis, i, pivot_col)
        # Otherwise the row is redundant; it is dropped by the caller.
