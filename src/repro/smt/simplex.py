"""An exact two-phase primal simplex over rationals.

The solver accepts conjunctions of non-strict linear constraints
(:class:`~repro.smt.linear.LinConstraint` with relation ``<=`` or ``=``) over
free rational variables and optionally maximises a linear objective.  It is
used

* as the feasibility engine for larger constraint systems (Fourier–Motzkin is
  preferred for small ones because it directly yields witnesses and
  projections), and
* as the LP back end of the Farkas-based template-parameter solver in
  :mod:`repro.invgen.farkas`.

Implementation notes: free variables are split into differences of
non-negative variables, every row is equipped with a slack or artificial
variable so that the all-slack/artificial basis is feasible, and Bland's rule
is used for pivot selection, which guarantees termination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Optional, Sequence

from ..logic.formulas import Relation
from ..logic.terms import LinExpr, Var
from .linear import LinConstraint

__all__ = ["LPStatus", "LPResult", "solve_lp", "feasible"]


class LPStatus:
    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"


@dataclass
class LPResult:
    status: str
    objective: Optional[Fraction] = None
    assignment: dict[Var, Fraction] = field(default_factory=dict)

    @property
    def is_feasible(self) -> bool:
        return self.status in (LPStatus.OPTIMAL, LPStatus.UNBOUNDED)


def solve_lp(
    constraints: Sequence[LinConstraint],
    objective: Optional[LinExpr] = None,
    maximize: bool = True,
) -> LPResult:
    """Solve ``max/min objective`` subject to the constraints.

    With ``objective=None`` only feasibility is decided (the returned
    objective value is then ``0``).  Strict inequalities are rejected; callers
    either tighten them (integer mode) or use Fourier–Motzkin.
    """
    for constraint in constraints:
        if constraint.rel is Relation.LT:
            raise ValueError("simplex does not accept strict inequalities")

    variables = sorted({v for c in constraints for v in c.variables()})
    if objective is not None:
        variables = sorted(set(variables) | objective.variables())
    var_index = {v: i for i, v in enumerate(variables)}
    num_struct = 2 * len(variables)  # x = x+ - x-

    rows: list[list[Fraction]] = []
    rhs: list[Fraction] = []
    rels: list[Relation] = []
    for constraint in constraints:
        row = [Fraction(0)] * num_struct
        for atom, coeff in constraint.expr.terms:
            idx = var_index[atom]  # type: ignore[index]
            row[2 * idx] += coeff
            row[2 * idx + 1] -= coeff
        rows.append(row)
        rhs.append(-constraint.expr.const)
        rels.append(constraint.rel)

    # Add slack variables for <= rows.
    num_slack = sum(1 for rel in rels if rel is Relation.LE)
    slack_base = num_struct
    slack_idx = 0
    for i, rel in enumerate(rels):
        rows[i] = rows[i] + [Fraction(0)] * num_slack
        if rel is Relation.LE:
            rows[i][slack_base + slack_idx] = Fraction(1)
            slack_idx += 1
    num_cols = num_struct + num_slack

    # Make all right-hand sides non-negative.
    for i in range(len(rows)):
        if rhs[i] < 0:
            rows[i] = [-value for value in rows[i]]
            rhs[i] = -rhs[i]

    # Choose a starting basis: a slack column with coefficient +1, otherwise an
    # artificial variable.
    basis: list[int] = []
    artificial_cols: list[int] = []
    for i in range(len(rows)):
        basic_col = None
        for j in range(slack_base, num_cols):
            if rows[i][j] == 1 and all(
                rows[k][j] == 0 for k in range(len(rows)) if k != i
            ):
                basic_col = j
                break
        if basic_col is None:
            for row in rows:
                row.append(Fraction(0))
            rows[i][num_cols] = Fraction(1)
            basic_col = num_cols
            artificial_cols.append(num_cols)
            num_cols += 1
        basis.append(basic_col)

    # ------------------------------------------------------------------
    # Phase 1: drive artificial variables to zero.
    # ------------------------------------------------------------------
    if artificial_cols:
        phase1_cost = [Fraction(0)] * num_cols
        for col in artificial_cols:
            phase1_cost[col] = Fraction(-1)
        status, value = _simplex(rows, rhs, basis, phase1_cost)
        assert status != LPStatus.UNBOUNDED
        if value < 0:
            return LPResult(LPStatus.INFEASIBLE)
        _drive_out_artificials(rows, rhs, basis, artificial_cols, num_struct)
        # Remove artificial columns (none is basic at a nonzero value now).
        keep = [j for j in range(num_cols) if j not in set(artificial_cols)]
        col_map = {old: new for new, old in enumerate(keep)}
        for i in range(len(rows)):
            rows[i] = [rows[i][j] for j in keep]
        new_basis = []
        surviving_rows = []
        new_rhs = []
        for i, b in enumerate(basis):
            if b in col_map:
                new_basis.append(col_map[b])
                surviving_rows.append(rows[i])
                new_rhs.append(rhs[i])
            # Rows whose basic variable is still an artificial are redundant
            # (the artificial sits at value zero in an all-zero row).
        rows = surviving_rows
        rhs = new_rhs
        basis = new_basis
        num_cols = len(keep)

    # ------------------------------------------------------------------
    # Phase 2: optimise the real objective (or stop after feasibility).
    # ------------------------------------------------------------------
    cost = [Fraction(0)] * num_cols
    objective_const = Fraction(0)
    if objective is not None:
        sign = Fraction(1) if maximize else Fraction(-1)
        objective_const = objective.const
        for atom, coeff in objective.terms:
            idx = var_index[atom]  # type: ignore[index]
            cost[2 * idx] += sign * coeff
            cost[2 * idx + 1] -= sign * coeff
        status, value = _simplex(rows, rhs, basis, cost)
        if status == LPStatus.UNBOUNDED:
            return LPResult(LPStatus.UNBOUNDED, None, _assignment(variables, basis, rhs))
    else:
        value = Fraction(0)

    assignment = _assignment(variables, basis, rhs)
    objective_value = None
    if objective is not None:
        raw = value if maximize else -value
        objective_value = raw + objective_const
    return LPResult(LPStatus.OPTIMAL, objective_value, assignment)


def feasible(constraints: Sequence[LinConstraint]) -> Optional[dict[Var, Fraction]]:
    """Feasibility check; returns a witness assignment or ``None``."""
    result = solve_lp(constraints, objective=None)
    if not result.is_feasible:
        return None
    return result.assignment


def _assignment(
    variables: Sequence[Var], basis: Sequence[int], rhs: Sequence[Fraction]
) -> dict[Var, Fraction]:
    values = {col: rhs[i] for i, col in enumerate(basis)}
    assignment: dict[Var, Fraction] = {}
    for idx, variable in enumerate(variables):
        positive = values.get(2 * idx, Fraction(0))
        negative = values.get(2 * idx + 1, Fraction(0))
        assignment[variable] = positive - negative
    return assignment


def _simplex(
    rows: list[list[Fraction]],
    rhs: list[Fraction],
    basis: list[int],
    cost: list[Fraction],
) -> tuple[str, Fraction]:
    """Primal simplex with Bland's rule on an explicitly maintained tableau."""
    num_rows = len(rows)
    num_cols = len(cost)
    while True:
        basis_set = set(basis)
        entering = None
        for j in range(num_cols):
            if j in basis_set:
                continue
            reduced = cost[j] - sum(cost[basis[i]] * rows[i][j] for i in range(num_rows))
            if reduced > 0:
                entering = j
                break
        if entering is None:
            value = sum(cost[basis[i]] * rhs[i] for i in range(num_rows))
            return LPStatus.OPTIMAL, value
        # Ratio test (Bland's rule tie break: smallest basic variable index).
        leaving = None
        best_ratio: Optional[Fraction] = None
        for i in range(num_rows):
            coeff = rows[i][entering]
            if coeff > 0:
                ratio = rhs[i] / coeff
                if (
                    best_ratio is None
                    or ratio < best_ratio
                    or (ratio == best_ratio and basis[i] < basis[leaving])
                ):
                    best_ratio = ratio
                    leaving = i
        if leaving is None:
            return LPStatus.UNBOUNDED, Fraction(0)
        _pivot(rows, rhs, basis, leaving, entering)


def _pivot(
    rows: list[list[Fraction]],
    rhs: list[Fraction],
    basis: list[int],
    pivot_row: int,
    pivot_col: int,
) -> None:
    pivot_value = rows[pivot_row][pivot_col]
    rows[pivot_row] = [value / pivot_value for value in rows[pivot_row]]
    rhs[pivot_row] = rhs[pivot_row] / pivot_value
    for i in range(len(rows)):
        if i == pivot_row:
            continue
        factor = rows[i][pivot_col]
        if factor == 0:
            continue
        rows[i] = [
            rows[i][j] - factor * rows[pivot_row][j] for j in range(len(rows[i]))
        ]
        rhs[i] = rhs[i] - factor * rhs[pivot_row]
    basis[pivot_row] = pivot_col


def _drive_out_artificials(
    rows: list[list[Fraction]],
    rhs: list[Fraction],
    basis: list[int],
    artificial_cols: list[int],
    num_real_cols: int,
) -> None:
    """Pivot basic artificial variables (at value zero) out of the basis."""
    artificial = set(artificial_cols)
    for i in range(len(rows)):
        if basis[i] not in artificial:
            continue
        pivot_col = None
        for j in range(len(rows[i])):
            if j in artificial:
                continue
            if rows[i][j] != 0:
                pivot_col = j
                break
        if pivot_col is not None:
            _pivot(rows, rhs, basis, i, pivot_col)
        # Otherwise the row is redundant; it is dropped by the caller.
