"""Verification-condition generation and checking.

:class:`VcChecker` is the single entry point the rest of the library uses for
semantic questions about straight-line code:

* ``check_triple(pre, commands, post)`` — validity of the Hoare triple
  ``{pre} commands {post}`` (this is the Inductiveness condition I1 of the
  paper applied to a basic path),
* ``is_feasible(commands, pre)`` — satisfiability of the path formula, used
  by the counterexample-analysis phase, and
* ``check_entailment(lhs, rhs)`` — implication between two state formulas
  (used by predicate abstraction for covering checks),
* ``edge_feasible(state, transition)`` / ``post_predicate_holds(state,
  transition, predicate)`` — the abstract-post oracle used by the (persistent)
  abstract reachability tree, memoised on ``(source-state, transition[,
  predicate])`` so that re-expanding an untouched ART region after a
  refinement is pure cache hits.

Both ``pre`` and ``post`` may contain universally quantified conjuncts of the
array-property fragment.  The pipeline follows Section 4.2 of the paper:
skolemise the negated post-condition, resolve array writes by read-over-write
case splits, instantiate quantified hypotheses at the read index terms, and
discharge the resulting quantifier-free obligation with the SMT solver.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Sequence

from ..lang.commands import Command
from ..logic.formulas import FALSE, Formula, TRUE, conjoin, negate
from ..logic.terms import Var
from ..logic.transform import FreshNames
from .arrays import resolve_stores
from .quant import instantiate_positive, skolemize_negative
from .solver import SatResult, SmtSolver
from .ssa import SsaTranslation, rename_to_versions, ssa_translate

__all__ = ["VcChecker", "PathFeasibility"]


@dataclass
class PathFeasibility:
    """Outcome of a path-feasibility query."""

    feasible: bool
    model: Optional[dict[Var, Fraction]] = None
    approximate: bool = False


class VcChecker:
    """Checks Hoare triples, path feasibility and entailments."""

    def __init__(self, integer_mode: bool = True, bb_limit: int = 40) -> None:
        self.solver = SmtSolver(integer_mode=integer_mode, bb_limit=bb_limit)
        self._fresh = FreshNames("vc")
        self.num_triple_checks = 0
        self.num_feasibility_checks = 0
        self.cache_hits = 0
        #: Memoised triple verdicts.  CEGAR re-checks the same (state, edge,
        #: predicate) obligations many times across ART nodes and refinement
        #: rounds; the inputs are immutable and hash-consed, so the keys are
        #: cheap and caching is safe.  A second memo level lives inside the
        #: solver itself (normalised-query cache), which also catches
        #: obligations that differ as triples but normalise to the same
        #: quantifier-free formula.
        self._triple_cache: dict[tuple, bool] = {}
        #: Abstract-post memo (the ART-facing layer).  Keys are
        #: ``(source-state, transition)`` for edge feasibility and
        #: ``(source-state, transition, predicate)`` for per-predicate posts.
        #: Neither verdict depends on the precision, so entries stay valid
        #: across refinements and across engine instances sharing a checker.
        self._edge_cache: dict[tuple, bool] = {}
        self._post_cache: dict[tuple, bool] = {}
        self._state_formulas: dict[frozenset, Formula] = {}
        self.num_edge_queries = 0
        self.edge_cache_hits = 0
        self.num_post_queries = 0
        self.post_cache_hits = 0

    def statistics(self) -> dict[str, int]:
        """Counter snapshot across the checker and its solver.

        Keys: ``triple_checks``, ``feasibility_checks``, ``triple_cache_hits``
        plus the solver counters (``sat_queries``, ``entailment_queries``) and
        the lazy-engine statistics from
        :meth:`~repro.smt.solver.SmtSolver.cache_info`.
        """
        stats = {
            "triple_checks": self.num_triple_checks,
            "feasibility_checks": self.num_feasibility_checks,
            "triple_cache_hits": self.cache_hits,
            "edge_queries": self.num_edge_queries,
            "edge_cache_hits": self.edge_cache_hits,
            "post_queries": self.num_post_queries,
            "post_cache_hits": self.post_cache_hits,
            "sat_queries": self.solver.num_sat_queries,
            "entailment_queries": self.solver.num_entailment_queries,
        }
        stats.update(self.solver.cache_info())
        return stats

    def cache_sizes(self) -> dict[str, int]:
        """Entry counts of the checker-level memo tables.

        Long-lived sessions (:class:`repro.core.api.Session`) share one
        checker across many tasks; these sizes are the memory-side of that
        bargain and feed :meth:`Session.statistics` so a service can watch
        cache growth and decide when to recycle a session.
        """
        return {
            "triple_cache": len(self._triple_cache),
            "edge_cache": len(self._edge_cache),
            "post_cache": len(self._post_cache),
            "state_formulas": len(self._state_formulas),
        }

    def snapshot(self) -> dict[str, int]:
        """A frozen copy of :meth:`statistics`, for later delta computation.

        The portfolio layer snapshots the (shared) checker's counters before
        giving a refiner its budget slice and attributes the difference to
        that slice with :meth:`delta_since` — the counters themselves are
        cumulative and shared by every engine using this checker.
        """
        return dict(self.statistics())

    def delta_since(self, snapshot: dict[str, int]) -> dict[str, int]:
        """Per-counter growth since a :meth:`snapshot` was taken.

        Counters absent from the snapshot (none today, but the solver's
        cache-info keys may grow) are reported at their full current value.
        """
        current = self.statistics()
        return {key: value - snapshot.get(key, 0) for key, value in current.items()}

    # ------------------------------------------------------------------
    # Hoare triples / inductiveness conditions
    # ------------------------------------------------------------------
    def check_triple(
        self, pre: Formula, commands: Sequence[Command], post: Formula
    ) -> bool:
        """Validity of ``{pre} commands {post}``."""
        self.num_triple_checks += 1
        if isinstance(post, type(TRUE)) and post == TRUE:
            return True
        key = (pre, tuple(commands), post)
        cached = self._triple_cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        translation = ssa_translate(commands)
        pre_ssa = rename_to_versions(pre, {}, {})
        post_ssa = rename_to_versions(
            post, translation.var_versions, translation.array_versions
        )
        obligation = conjoin(
            [pre_ssa, translation.formula(), negate(post_ssa)]
        )
        verdict = self._is_unsat_obligation(obligation, translation)
        self._triple_cache[key] = verdict
        return verdict

    # ------------------------------------------------------------------
    # Abstract-post oracle (memoised on ART-level keys)
    # ------------------------------------------------------------------
    def state_formula(self, state: frozenset) -> Formula:
        """The conjunction of an abstract state's predicates (cached).

        Abstract states are small frozensets of hash-consed formulas; the
        same state recurs across thousands of post queries, so the sorted
        conjunction is built once per distinct state.
        """
        formula = self._state_formulas.get(state)
        if formula is None:
            formula = conjoin(sorted(state, key=str))
            self._state_formulas[state] = formula
        return formula

    def edge_feasible(self, state: frozenset, transition) -> bool:
        """May ``transition`` fire from the abstract state?

        ``transition`` is any hashable object with a ``commands`` tuple (a
        :class:`~repro.lang.cfg.Transition`).  The verdict only depends on the
        state and the commands, never on the precision, so the memo survives
        refinements unchanged.
        """
        self.num_edge_queries += 1
        key = (state, transition)
        cached = self._edge_cache.get(key)
        if cached is not None:
            self.edge_cache_hits += 1
            return cached
        pre = self.state_formula(state)
        verdict = not self.check_triple(pre, transition.commands, FALSE)
        self._edge_cache[key] = verdict
        return verdict

    def post_predicate_holds(self, state: frozenset, transition, predicate: Formula) -> bool:
        """Does ``predicate`` hold after firing ``transition`` from ``state``?"""
        self.num_post_queries += 1
        key = (state, transition, predicate)
        cached = self._post_cache.get(key)
        if cached is not None:
            self.post_cache_hits += 1
            return cached
        pre = self.state_formula(state)
        verdict = self.check_triple(pre, transition.commands, predicate)
        self._post_cache[key] = verdict
        return verdict

    def check_entailment(self, lhs: Formula, rhs: Formula) -> bool:
        """``lhs |= rhs`` for state formulas (no commands involved)."""
        return self.check_triple(lhs, (), rhs)

    def holds_initially(self, formula: Formula) -> bool:
        """Does ``formula`` hold in every state (i.e. is it valid)?"""
        return self.check_triple(TRUE, (), formula)

    # ------------------------------------------------------------------
    # Path feasibility
    # ------------------------------------------------------------------
    def is_feasible(
        self, commands: Sequence[Command], pre: Formula = TRUE
    ) -> PathFeasibility:
        """Is there a concrete execution of ``commands`` from a ``pre`` state?"""
        self.num_feasibility_checks += 1
        translation = ssa_translate(commands)
        pre_ssa = rename_to_versions(pre, {}, {})
        obligation = conjoin([pre_ssa, translation.formula()])
        prepared = self._prepare(obligation, translation)
        result = self.solver.check_sat(prepared)
        return PathFeasibility(result.satisfiable, result.model, result.approximate)

    # ------------------------------------------------------------------
    # Shared pipeline
    # ------------------------------------------------------------------
    def _prepare(self, obligation: Formula, translation: SsaTranslation) -> Formula:
        """Skolemise, resolve stores and instantiate quantifiers."""
        skolemized = skolemize_negative(obligation, self._fresh)
        resolved = resolve_stores(skolemized, translation.stores)
        instantiated = instantiate_positive(resolved)
        return instantiated

    def _is_unsat_obligation(
        self, obligation: Formula, translation: SsaTranslation
    ) -> bool:
        prepared = self._prepare(obligation, translation)
        return self.solver.is_unsat(prepared)
