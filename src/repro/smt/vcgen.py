"""Verification-condition generation and checking.

:class:`VcChecker` is the single entry point the rest of the library uses for
semantic questions about straight-line code:

* ``check_triple(pre, commands, post)`` — validity of the Hoare triple
  ``{pre} commands {post}`` (this is the Inductiveness condition I1 of the
  paper applied to a basic path),
* ``is_feasible(commands, pre)`` — satisfiability of the path formula, used
  by the counterexample-analysis phase, and
* ``check_entailment(lhs, rhs)`` — implication between two state formulas
  (used by predicate abstraction for covering checks),
* ``edge_feasible(state, transition)`` / ``post_predicate_holds(state,
  transition, predicate)`` / ``post_all_predicates(state, transition,
  predicates)`` — the abstract-post oracle used by the (persistent) abstract
  reachability tree, memoised on ``(source-state, transition[, predicate])``
  so that re-expanding an untouched ART region after a refinement is pure
  cache hits.

Both ``pre`` and ``post`` may contain universally quantified conjuncts of the
array-property fragment.  The pipeline follows Section 4.2 of the paper:
skolemise the negated post-condition, resolve array writes by read-over-write
case splits, instantiate quantified hypotheses at the read index terms, and
discharge the resulting quantifier-free obligation with the SMT solver.

The batched abstract-post oracle
--------------------------------

An ART expansion asks *every* precision predicate of the target location
against the same ``(state, transition)`` pair.  The scalar oracle pays the
full pipeline — ``ssa_translate``, renaming, skolemisation, store resolution
and a cold ``check_sat`` — once **per predicate**.  The batched oracle
prepares the edge once and decides the whole family inside one incremental
solver context::

    (state, transition)  ──prepare once──►  core = pre_ssa ∧ trans_ssa
                                            │  skolemise + resolve stores
                                            │  assert into SolverContext
                                            ▼
    p₁, p₂, …, pₙ        ──per predicate──► push ¬pᵢ' / check / pop
                                            (shared tableau, shared unit
                                             store, shared read flattening)

The prepared core (SSA translation + solver context) is memoised per
``(state, transition)`` in an LRU-bounded table, so the delta-recheck wave
after a refinement — which re-asks the *same* edge about the newly added
predicates — reuses the context instead of re-preparing (counted in
``context_reuses``).  Memo-hit predicates are answered from the post cache
before any context is built; edges or predicates with quantifiers fall back
to the scalar pipeline, whose verdicts the context path matches exactly
(``post_predicate_holds`` is kept as the differential oracle).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Optional, Sequence

from ..core import faults
from ..lang.commands import Command
from ..logic.formulas import FALSE, Formula, TRUE, conjoin, negate
from ..logic.terms import Var
from ..logic.transform import FreshNames, quantifier_free
from .arrays import resolve_stores
from .quant import instantiate_positive, skolemize_negative
from .solver import SatResult, SmtSolver, SolverContext
from .ssa import SsaTranslation, rename_to_versions, ssa_translate

__all__ = ["VcChecker", "PathFeasibility"]


@dataclass
class PathFeasibility:
    """Outcome of a path-feasibility query."""

    feasible: bool
    model: Optional[dict[Var, Fraction]] = None
    approximate: bool = False


@dataclass
class _PreparedEdge:
    """The once-per-``(state, transition)`` core of the batched post oracle."""

    translation: SsaTranslation
    pre_ssa: Formula
    #: ``pre_ssa ∧ trans_ssa`` after skolemisation and store resolution (not
    #: yet instantiated: hypothesis instantiation is per-predicate, because
    #: the predicate contributes instantiation terms).
    core: Formula
    #: True when the resolved core still contains a quantifier — the context
    #: path cannot host it, so every predicate falls back to the scalar
    #: pipeline (which instantiates against the full obligation).
    quantified: bool
    #: The incremental solver context with the core asserted; ``None`` for
    #: quantified cores.
    context: Optional[SolverContext]
    #: True when the core itself is unsatisfiable: the edge cannot fire and
    #: every predicate trivially holds after it.
    base_failed: bool


class VcChecker:
    """Checks Hoare triples, path feasibility, entailments and abstract posts.

    ``max_cache_entries`` optionally bounds the checker-level memo tables
    (triple, edge, post and prepared-edge caches) with least-recently-used
    eviction, so a long-lived :class:`~repro.core.api.Session` sharing one
    checker across many tasks cannot grow without bound.  ``None`` (the
    default) keeps the verdict caches unbounded; the prepared-edge table is
    *always* capped (at ``max_cache_entries`` when set, else
    ``PREPARED_EDGE_CAP``) because each entry pins a live solver context —
    a simplex tableau, not a boolean.
    """

    #: Default LRU bound of the prepared-edge table when ``max_cache_entries``
    #: is unset.  Far above any single run's distinct-edge count (the default
    #: node budget is 4000), so eviction only kicks in for long sessions.
    PREPARED_EDGE_CAP = 2048

    def __init__(
        self,
        integer_mode: bool = True,
        bb_limit: int = 40,
        max_cache_entries: Optional[int] = None,
        batched_posts: bool = True,
    ) -> None:
        if max_cache_entries is not None and max_cache_entries < 1:
            raise ValueError(
                f"max_cache_entries must be >= 1 or None, got {max_cache_entries}"
            )
        self.solver = SmtSolver(integer_mode=integer_mode, bb_limit=bb_limit)
        self._fresh = FreshNames("vc")
        self.max_cache_entries = max_cache_entries
        #: Route batched post queries through the shared solver context.
        #: ``False`` degrades :meth:`post_all_predicates` to one scalar
        #: :meth:`post_predicate_holds` per predicate — the differential
        #: baseline the batched path is tested and benchmarked against.
        self.batched_posts = batched_posts
        self.num_triple_checks = 0
        self.num_feasibility_checks = 0
        self.cache_hits = 0
        #: Memoised triple verdicts.  CEGAR re-checks the same (state, edge,
        #: predicate) obligations many times across ART nodes and refinement
        #: rounds; the inputs are immutable and hash-consed, so the keys are
        #: cheap and caching is safe.  A second memo level lives inside the
        #: solver itself (normalised-query cache), which also catches
        #: obligations that differ as triples but normalise to the same
        #: quantifier-free formula.
        self._triple_cache: dict[tuple, bool] = {}
        #: Abstract-post memo (the ART-facing layer).  Keys are
        #: ``(source-state, transition)`` for edge feasibility and
        #: ``(source-state, transition, predicate)`` for per-predicate posts.
        #: Neither verdict depends on the precision, so entries stay valid
        #: across refinements and across engine instances sharing a checker.
        self._edge_cache: dict[tuple, bool] = {}
        self._post_cache: dict[tuple, bool] = {}
        self._state_formulas: dict[frozenset, Formula] = {}
        #: Prepared cores of the batched oracle, keyed like the edge cache.
        #: Entries hold a live :class:`SolverContext` (a simplex tableau), so
        #: this table is bounded even when the verdict caches are not: it
        #: gets its own LRU cap, and eviction just means re-preparing the
        #: edge if its batch ever recurs.
        self._prepared_edges: dict[tuple, _PreparedEdge] = {}
        self.num_edge_queries = 0
        self.edge_cache_hits = 0
        self.num_post_queries = 0
        self.post_cache_hits = 0
        #: Batched-oracle counters: cores prepared / served from the
        #: prepared-edge cache, predicates decided inside a context vs
        #: through the scalar fallback, and edges whose whole batch was
        #: answered from the post cache (no context ever touched).
        self.num_prepare_calls = 0
        self.num_context_reuses = 0
        self.num_batched_posts = 0
        self.num_scalar_fallbacks = 0
        self.num_batch_calls = 0
        self.num_ssa_translations = 0
        #: Verdicts installed by :meth:`install_speculated` — work a parallel
        #: worker shard decided ahead of time that the commit path then
        #: consumed as cache hits.
        self.num_speculated_installs = 0
        self.cache_evictions = 0
        #: Per-phase wall clock of the batched oracle (seconds): edge
        #: preparation (translate + skolemise + resolve + base assert) vs
        #: per-predicate context checks.
        self.prepare_seconds = 0.0
        self.post_solve_seconds = 0.0

    # ------------------------------------------------------------------
    # LRU plumbing (active only when a cap applies: max_cache_entries for
    # the verdict caches, always for the prepared-edge table)
    # ------------------------------------------------------------------
    @property
    def _prepared_edge_cap(self) -> int:
        # Tracks max_cache_entries dynamically: pool workers set the
        # attribute after construction.
        if self.max_cache_entries is not None:
            return self.max_cache_entries
        return self.PREPARED_EDGE_CAP

    def _cache_get(self, cache: dict, key, cap: Optional[int] = None):
        value = cache.get(key)
        if value is None:
            return None
        if (cap if cap is not None else self.max_cache_entries) is not None:
            # Python dicts iterate in insertion order; re-inserting marks the
            # entry most-recently-used so eviction drops the coldest one.
            del cache[key]
            cache[key] = value
        return value

    def _cache_put(self, cache: dict, key, value, cap: Optional[int] = None) -> None:
        cache[key] = value
        cap = cap if cap is not None else self.max_cache_entries
        if cap is not None and len(cache) > cap:
            del cache[next(iter(cache))]
            self.cache_evictions += 1

    # ------------------------------------------------------------------
    def statistics(self) -> dict[str, float]:
        """Counter snapshot across the checker and its solver.

        Keys: ``triple_checks``, ``feasibility_checks``, ``triple_cache_hits``,
        the abstract-post counters (``edge_queries``/``post_queries`` and
        their cache hits), the batched-oracle counters (``prepare_calls``,
        ``context_reuses``, ``batched_posts``, ``scalar_fallbacks``,
        ``batch_calls``, ``ssa_translations``, ``cache_evictions``), the
        per-phase timings (``prepare_seconds``, ``post_solve_seconds``) plus
        the solver counters (``sat_queries``, ``entailment_queries``) and the
        lazy-engine statistics from
        :meth:`~repro.smt.solver.SmtSolver.cache_info`.
        """
        stats = {
            "triple_checks": self.num_triple_checks,
            "feasibility_checks": self.num_feasibility_checks,
            "triple_cache_hits": self.cache_hits,
            "edge_queries": self.num_edge_queries,
            "edge_cache_hits": self.edge_cache_hits,
            "post_queries": self.num_post_queries,
            "post_cache_hits": self.post_cache_hits,
            "prepare_calls": self.num_prepare_calls,
            "context_reuses": self.num_context_reuses,
            "batched_posts": self.num_batched_posts,
            "scalar_fallbacks": self.num_scalar_fallbacks,
            "batch_calls": self.num_batch_calls,
            "ssa_translations": self.num_ssa_translations,
            "speculated_installs": self.num_speculated_installs,
            "cache_evictions": self.cache_evictions,
            "prepare_seconds": round(self.prepare_seconds, 6),
            "post_solve_seconds": round(self.post_solve_seconds, 6),
            "sat_queries": self.solver.num_sat_queries,
            "entailment_queries": self.solver.num_entailment_queries,
        }
        stats.update(self.solver.cache_info())
        return stats

    def cache_sizes(self) -> dict[str, int]:
        """Entry counts of the checker-level memo tables.

        Long-lived sessions (:class:`repro.core.api.Session`) share one
        checker across many tasks; these sizes are the memory-side of that
        bargain and feed :meth:`Session.statistics` so a service can watch
        cache growth and decide when to recycle a session.  ``evictions``
        counts entries dropped by the LRU cap (``max_cache_entries``).
        """
        return {
            "triple_cache": len(self._triple_cache),
            "edge_cache": len(self._edge_cache),
            "post_cache": len(self._post_cache),
            "state_formulas": len(self._state_formulas),
            "prepared_edges": len(self._prepared_edges),
            "evictions": self.cache_evictions,
        }

    def snapshot(self) -> dict[str, float]:
        """A frozen copy of :meth:`statistics`, for later delta computation.

        The portfolio layer snapshots the (shared) checker's counters before
        giving a refiner its budget slice and attributes the difference to
        that slice with :meth:`delta_since` — the counters themselves are
        cumulative and shared by every engine using this checker.
        """
        return dict(self.statistics())

    def delta_since(self, snapshot: dict[str, float]) -> dict[str, float]:
        """Per-counter growth since a :meth:`snapshot` was taken.

        Counters absent from the snapshot (none today, but the solver's
        cache-info keys may grow) are reported at their full current value.
        """
        current = self.statistics()
        return {key: value - snapshot.get(key, 0) for key, value in current.items()}

    # ------------------------------------------------------------------
    # Hoare triples / inductiveness conditions
    # ------------------------------------------------------------------
    def check_triple(
        self, pre: Formula, commands: Sequence[Command], post: Formula
    ) -> bool:
        """Validity of ``{pre} commands {post}``."""
        self.num_triple_checks += 1
        if isinstance(post, type(TRUE)) and post == TRUE:
            return True
        key = (pre, tuple(commands), post)
        cached = self._cache_get(self._triple_cache, key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        translation = self._translate(commands)
        pre_ssa = rename_to_versions(pre, {}, {})
        post_ssa = rename_to_versions(
            post, translation.var_versions, translation.array_versions
        )
        obligation = conjoin(
            [pre_ssa, translation.formula(), negate(post_ssa)]
        )
        verdict = self._is_unsat_obligation(obligation, translation)
        self._cache_put(self._triple_cache, key, verdict)
        return verdict

    # ------------------------------------------------------------------
    # Abstract-post oracle (memoised on ART-level keys)
    # ------------------------------------------------------------------
    def state_formula(self, state: frozenset) -> Formula:
        """The conjunction of an abstract state's predicates (cached).

        Abstract states are small frozensets of hash-consed formulas; the
        same state recurs across thousands of post queries, so the sorted
        conjunction is built once per distinct state.
        """
        formula = self._state_formulas.get(state)
        if formula is None:
            formula = conjoin(sorted(state, key=str))
            self._state_formulas[state] = formula
        return formula

    def edge_feasible(self, state: frozenset, transition) -> bool:
        """May ``transition`` fire from the abstract state?

        ``transition`` is any hashable object with a ``commands`` tuple (a
        :class:`~repro.lang.cfg.Transition`).  The verdict only depends on the
        state and the commands, never on the precision, so the memo survives
        refinements unchanged.  Decided through the prepared-edge context
        (one satisfiability check of the asserted core); the context then
        stays cached for the post batch that typically follows.
        """
        self.num_edge_queries += 1
        key = (state, transition)
        cached = self._cache_get(self._edge_cache, key)
        if cached is not None:
            self.edge_cache_hits += 1
            return cached
        pre = self.state_formula(state)
        if not self.batched_posts:
            verdict = not self.check_triple(pre, transition.commands, FALSE)
        else:
            edge = self._prepare_edge(state, transition)
            # Mirrors check_triple(pre, commands, FALSE) — one Hoare-triple
            # check against the memo both oracles share.
            self.num_triple_checks += 1
            triple_key = (pre, tuple(transition.commands), FALSE)
            unsat = self._cache_get(self._triple_cache, triple_key)
            if unsat is not None:
                self.cache_hits += 1
            else:
                if edge.quantified:
                    unsat = self._is_unsat_obligation(edge.core, edge.translation)
                elif edge.base_failed:
                    unsat = True
                else:
                    started = time.perf_counter()
                    self.num_batched_posts += 1
                    unsat = not edge.context.check(TRUE).satisfiable
                    self.post_solve_seconds += time.perf_counter() - started
                self._cache_put(self._triple_cache, triple_key, unsat)
            verdict = not unsat
        self._cache_put(self._edge_cache, key, verdict)
        return verdict

    def post_predicate_holds(self, state: frozenset, transition, predicate: Formula) -> bool:
        """Does ``predicate`` hold after firing ``transition`` from ``state``?

        The scalar oracle: one full pipeline run per predicate.  Kept as the
        differential baseline of :meth:`post_all_predicates` (and used by it
        when ``batched_posts`` is off); verdicts of the two paths are
        identical and land in the same memo tables.
        """
        self.num_post_queries += 1
        key = (state, transition, predicate)
        cached = self._cache_get(self._post_cache, key)
        if cached is not None:
            self.post_cache_hits += 1
            return cached
        pre = self.state_formula(state)
        verdict = self.check_triple(pre, transition.commands, predicate)
        self._cache_put(self._post_cache, key, verdict)
        return verdict

    def post_all_predicates(
        self, state: frozenset, transition, predicates: Iterable[Formula]
    ) -> dict[Formula, bool]:
        """Decide every predicate of one edge in a single batched query.

        Memo-hit predicates are answered from the post cache first — if the
        whole batch hits, no solver context is built or fetched.  The rest
        share one prepared core (cached per ``(state, transition)``) and are
        decided by push/check/pop of their negated renamed form inside its
        :class:`~repro.smt.solver.SolverContext`.  Verdicts and memo effects
        are identical to calling :meth:`post_predicate_holds` per predicate.
        """
        verdicts: dict[Formula, bool] = {}
        remaining: list[Formula] = []
        for predicate in predicates:
            self.num_post_queries += 1
            cached = self._cache_get(self._post_cache, (state, transition, predicate))
            if cached is not None:
                self.post_cache_hits += 1
                verdicts[predicate] = cached
            else:
                remaining.append(predicate)
        if not remaining:
            return verdicts
        # Fault-injection hook: a ``slow-post`` spec keyed by the edge's
        # location names stalls every undecided predicate of this batch —
        # one straggling solver query per triple, so a batch split across
        # worker shards straggles proportionally to its share.
        fault_key = (
            f"{getattr(transition.source, 'name', transition.source)}"
            f"->{getattr(transition.target, 'name', transition.target)}",
            str(getattr(transition.target, "name", transition.target)),
        )
        for _ in remaining:
            faults.fire("post", fault_key)
        if not self.batched_posts:
            # Differential baseline: the scalar oracle per predicate (undo
            # the query count above — post_predicate_holds re-counts).
            for predicate in remaining:
                self.num_post_queries -= 1
                verdicts[predicate] = self.post_predicate_holds(
                    state, transition, predicate
                )
            return verdicts
        self.num_batch_calls += 1
        edge = self._prepare_edge(state, transition)
        pre = self.state_formula(state)
        for predicate in remaining:
            verdict = self._decide_post(edge, pre, transition, predicate)
            self._cache_put(self._post_cache, (state, transition, predicate), verdict)
            verdicts[predicate] = verdict
        return verdicts

    def install_speculated(
        self,
        state: frozenset,
        transition,
        edge_verdict: Optional[bool],
        post_verdicts: Optional[dict[Formula, bool]] = None,
    ) -> int:
        """Merge verdicts a worker shard decided ahead of time into this
        checker's memo tables; returns the number actually installed.

        This is the merge half of parallel exploration
        (:mod:`repro.core.parallel`): worker shards decide ``edge_feasible``
        and per-predicate posts on their own solvers, and the commit path
        installs the results here so :meth:`edge_feasible` /
        :meth:`post_all_predicates` answer from cache.  Both verdicts are
        precision-independent, so a speculated result can never go stale —
        at worst it is wasted work for an obligation the ART pruned.

        Budget fidelity: each *newly* installed verdict counts as one
        ``num_triple_checks``, exactly what the sequential engine would have
        paid to decide it here, so ``max_solver_calls`` budgets behave the
        same with and without workers.  Verdicts already cached (a memo hit
        the worker could not see) install nothing and count nothing.
        """
        installed = 0
        if edge_verdict is not None:
            key = (state, transition)
            if self._cache_get(self._edge_cache, key) is None:
                self.num_triple_checks += 1
                self._cache_put(self._edge_cache, key, edge_verdict)
                installed += 1
        for predicate, verdict in (post_verdicts or {}).items():
            key = (state, transition, predicate)
            if self._cache_get(self._post_cache, key) is None:
                self.num_triple_checks += 1
                self._cache_put(self._post_cache, key, verdict)
                installed += 1
        self.num_speculated_installs += installed
        return installed

    # ------------------------------------------------------------------
    # Batched-oracle internals
    # ------------------------------------------------------------------
    def _prepare_edge(self, state: frozenset, transition) -> _PreparedEdge:
        """The prepared core for ``(state, transition)`` (LRU-cached)."""
        key = (state, transition)
        edge = self._cache_get(self._prepared_edges, key, cap=self._prepared_edge_cap)
        if edge is not None:
            self.num_context_reuses += 1
            return edge
        started = time.perf_counter()
        self.num_prepare_calls += 1
        translation = self._translate(transition.commands)
        pre_ssa = rename_to_versions(self.state_formula(state), {}, {})
        core = conjoin([pre_ssa, translation.formula()])
        core = skolemize_negative(core, self._fresh)
        core = resolve_stores(core, translation.stores)
        quantified = not quantifier_free(core)
        context: Optional[SolverContext] = None
        base_failed = False
        if not quantified:
            context = self.solver.context()
            base_failed = not context.assert_base(core)
        edge = _PreparedEdge(
            translation=translation,
            pre_ssa=pre_ssa,
            core=core,
            quantified=quantified,
            context=context,
            base_failed=base_failed,
        )
        self._cache_put(self._prepared_edges, key, edge, cap=self._prepared_edge_cap)
        self.prepare_seconds += time.perf_counter() - started
        return edge

    def _decide_post(
        self, edge: _PreparedEdge, pre: Formula, transition, predicate: Formula
    ) -> bool:
        """One predicate of a batch, with scalar-identical memo behaviour."""
        # Budget fidelity: every decided post is one Hoare-triple check, and
        # both oracles read and write the same triple memo.
        self.num_triple_checks += 1
        if isinstance(predicate, type(TRUE)) and predicate == TRUE:
            return True
        triple_key = (pre, tuple(transition.commands), predicate)
        cached = self._cache_get(self._triple_cache, triple_key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        translation = edge.translation
        post_ssa = rename_to_versions(
            predicate, translation.var_versions, translation.array_versions
        )
        negated = negate(post_ssa)
        if edge.quantified:
            verdict = self._scalar_fallback(edge, negated)
        elif edge.base_failed:
            # The edge cannot fire: {pre} commands {p} holds vacuously.
            verdict = True
        else:
            assumption = resolve_stores(
                skolemize_negative(negated, self._fresh), translation.stores
            )
            if not quantifier_free(assumption):
                verdict = self._scalar_fallback(edge, negated)
            else:
                started = time.perf_counter()
                self.num_batched_posts += 1
                verdict = not edge.context.check(assumption).satisfiable
                self.post_solve_seconds += time.perf_counter() - started
        self._cache_put(self._triple_cache, triple_key, verdict)
        return verdict

    def _scalar_fallback(self, edge: _PreparedEdge, negated: Formula) -> bool:
        """The full quantifier pipeline over the whole obligation.

        Used whenever the core or the (negated) predicate still carries a
        quantifier: hypothesis instantiation draws its index terms from the
        *combined* obligation, so splitting it across the context would
        weaken the check.  The prepared translation is still reused.
        """
        self.num_scalar_fallbacks += 1
        obligation = conjoin(
            [edge.pre_ssa, edge.translation.formula(), negated]
        )
        return self._is_unsat_obligation(obligation, edge.translation)

    def check_entailment(self, lhs: Formula, rhs: Formula) -> bool:
        """``lhs |= rhs`` for state formulas (no commands involved)."""
        return self.check_triple(lhs, (), rhs)

    def holds_initially(self, formula: Formula) -> bool:
        """Does ``formula`` hold in every state (i.e. is it valid)?"""
        return self.check_triple(TRUE, (), formula)

    # ------------------------------------------------------------------
    # Path feasibility
    # ------------------------------------------------------------------
    def is_feasible(
        self, commands: Sequence[Command], pre: Formula = TRUE
    ) -> PathFeasibility:
        """Is there a concrete execution of ``commands`` from a ``pre`` state?"""
        self.num_feasibility_checks += 1
        translation = self._translate(commands)
        pre_ssa = rename_to_versions(pre, {}, {})
        obligation = conjoin([pre_ssa, translation.formula()])
        prepared = self._prepare(obligation, translation)
        result = self.solver.check_sat(prepared)
        return PathFeasibility(result.satisfiable, result.model, result.approximate)

    # ------------------------------------------------------------------
    # Shared pipeline
    # ------------------------------------------------------------------
    def _translate(self, commands: Sequence[Command]) -> SsaTranslation:
        self.num_ssa_translations += 1
        return ssa_translate(commands)

    def _prepare(self, obligation: Formula, translation: SsaTranslation) -> Formula:
        """Skolemise, resolve stores and instantiate quantifiers."""
        skolemized = skolemize_negative(obligation, self._fresh)
        resolved = resolve_stores(skolemized, translation.stores)
        instantiated = instantiate_positive(resolved)
        return instantiated

    def _is_unsat_obligation(
        self, obligation: Formula, translation: SsaTranslation
    ) -> bool:
        prepared = self._prepare(obligation, translation)
        return self.solver.is_unsat(prepared)
