"""Static single assignment translation of command sequences.

The counterexample-analysis phase of CEGAR translates an error path into a
*path formula* "when the path is written in static single assignment form,
that is, where each assignment to a variable is given a fresh name"
(Section 2.1 of the paper).  This module performs that translation for
sequences of primitive commands and also tracks array writes as a chain of
symbolic ``store`` records, which the array machinery later eliminates by
case splitting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

from ..lang.commands import ArrayAssign, Assign, Assume, Command, Havoc, Skip
from ..logic.formulas import Formula, conjoin, eq
from ..logic.terms import LinExpr, Var
from .arrays import Store

__all__ = ["SsaTranslation", "ssa_translate", "versioned", "rename_to_versions"]


def versioned(name: str, version: int) -> str:
    """The SSA name of ``name`` at version ``version``."""
    return f"{name}@{version}"


def base_name(name: str) -> str:
    """Strip an SSA version suffix."""
    return name.split("@", 1)[0]


@dataclass
class SsaTranslation:
    """Result of translating a command sequence into SSA form."""

    #: One constraint per assume / scalar assignment, in path order, paired
    #: with the index of the command that produced it.
    constraints: list[tuple[int, Formula]] = field(default_factory=list)
    #: Array-write chain: versioned array symbol -> store record.
    stores: dict[str, Store] = field(default_factory=dict)
    #: Final version of every scalar variable seen.
    var_versions: dict[str, int] = field(default_factory=dict)
    #: Final version of every array symbol seen.
    array_versions: dict[str, int] = field(default_factory=dict)
    #: Cached :meth:`formula` result.  A translation is immutable once built,
    #: and the batched post oracle asks for the conjunction once per
    #: predicate of an edge — building it once per translation instead.
    _formula: Optional[Formula] = field(default=None, repr=False, compare=False)

    def formula(self) -> Formula:
        """The conjunction of all SSA constraints (stores excluded, cached)."""
        if self._formula is None:
            self._formula = conjoin([constraint for _, constraint in self.constraints])
        return self._formula

    def initial_renaming(self, names: Iterable[str], arrays: Iterable[str]) -> dict[str, str]:
        renaming = {name: versioned(name, 0) for name in names}
        renaming.update({array: versioned(array, 0) for array in arrays})
        return renaming

    def final_renaming(self) -> dict[str, str]:
        renaming = {
            name: versioned(name, version) for name, version in self.var_versions.items()
        }
        renaming.update(
            {name: versioned(name, version) for name, version in self.array_versions.items()}
        )
        return renaming


def rename_to_versions(
    formula: Formula,
    var_versions: Mapping[str, int],
    array_versions: Mapping[str, int],
) -> Formula:
    """Rename a state formula to the given variable/array versions.

    Names that have no recorded version are renamed to version 0 so that the
    formula always talks about SSA symbols.
    """
    renaming: dict[str, str] = {}
    for var in formula.variables():
        renaming[var.name] = versioned(var.name, var_versions.get(var.name, 0))
    for array in formula.arrays():
        renaming[array] = versioned(array, array_versions.get(array, 0))
    return formula.rename(renaming)


def _rename_expr(
    expr: LinExpr, var_versions: Mapping[str, int], array_versions: Mapping[str, int]
) -> LinExpr:
    renaming: dict[str, str] = {}
    for var in expr.variables():
        renaming[var.name] = versioned(var.name, var_versions.get(var.name, 0))
    for array in expr.arrays():
        renaming[array] = versioned(array, array_versions.get(array, 0))
    return expr.rename(renaming)


def ssa_translate(commands: Sequence[Command]) -> SsaTranslation:
    """Translate a straight-line command sequence into SSA constraints."""
    translation = SsaTranslation()
    var_versions = translation.var_versions
    array_versions = translation.array_versions

    for position, command in enumerate(commands):
        if isinstance(command, Skip):
            continue
        if isinstance(command, Assume):
            renamed = rename_to_versions(command.cond, var_versions, array_versions)
            translation.constraints.append((position, renamed))
            continue
        if isinstance(command, Assign):
            rhs = _rename_expr(command.expr, var_versions, array_versions)
            new_version = var_versions.get(command.var, 0) + 1
            var_versions[command.var] = new_version
            lhs = LinExpr.variable(versioned(command.var, new_version))
            translation.constraints.append((position, eq(lhs, rhs)))
            continue
        if isinstance(command, ArrayAssign):
            index = _rename_expr(command.index, var_versions, array_versions)
            value = _rename_expr(command.value, var_versions, array_versions)
            old_version = array_versions.get(command.array, 0)
            new_version = old_version + 1
            array_versions[command.array] = new_version
            translation.stores[versioned(command.array, new_version)] = Store(
                base=versioned(command.array, old_version), index=index, value=value
            )
            continue
        if isinstance(command, Havoc):
            for name in command.vars:
                var_versions[name] = var_versions.get(name, 0) + 1
            continue
        raise TypeError(f"unexpected command {command!r}")
    return translation
