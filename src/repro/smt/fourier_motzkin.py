"""Fourier–Motzkin elimination over exact rationals.

This module provides the two operations the rest of the library needs from a
linear-arithmetic engine:

* :func:`satisfiable` — decide satisfiability of a conjunction of linear
  constraints over the rationals and, when satisfiable, return a witness
  valuation (reconstructed by back-substitution through the elimination
  steps), and
* :func:`project` — existentially quantify a set of variables away, which is
  used by the strongest-postcondition engine and the polyhedra-lite abstract
  domain.

Fourier–Motzkin has worst-case exponential behaviour, but the constraint
systems produced from path programs are small; the satisfiability entry point
additionally falls back to the simplex engine when systems grow large (see
:mod:`repro.smt.lra`).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Optional, Sequence

from ..logic.formulas import Relation
from ..logic.terms import LinExpr, Var
from .linear import LinConstraint, is_trivial_false, is_trivial_true, normalize_constraint

__all__ = ["satisfiable", "project", "EliminationStep", "eliminate_variable"]


@dataclass
class EliminationStep:
    """Record of one variable elimination, used for model reconstruction."""

    var: Var
    #: ``definition`` is set when the variable was eliminated via an equality.
    definition: Optional[LinExpr]
    #: Lower bounds as (expression, strict) pairs: ``var >= expr`` / ``>``.
    lower: list[tuple[LinExpr, bool]]
    #: Upper bounds as (expression, strict) pairs: ``var <= expr`` / ``<``.
    upper: list[tuple[LinExpr, bool]]


def _split_on_var(
    constraints: Sequence[LinConstraint], var: Var
) -> tuple[list[LinConstraint], list[LinConstraint]]:
    """Split into constraints mentioning / not mentioning ``var``."""
    with_var: list[LinConstraint] = []
    without: list[LinConstraint] = []
    for constraint in constraints:
        if constraint.expr.coeff(var) != 0:
            with_var.append(constraint)
        else:
            without.append(constraint)
    return with_var, without


def eliminate_variable(
    constraints: Sequence[LinConstraint], var: Var
) -> tuple[list[LinConstraint], EliminationStep]:
    """Eliminate ``var`` and return the reduced system plus a replay record."""
    with_var, result = _split_on_var(constraints, var)

    # Prefer elimination through an equality: substitute and keep the result
    # linear in size.
    equality = next((c for c in with_var if c.rel is Relation.EQ), None)
    if equality is not None:
        coeff = equality.expr.coeff(var)
        # coeff * var + rest = 0   =>   var = -rest / coeff
        rest = equality.expr - LinExpr.make({var: coeff})
        definition = rest.scale(Fraction(-1, 1) / coeff)
        step = EliminationStep(var, definition, [], [])
        for constraint in with_var:
            if constraint is equality:
                continue
            substituted = constraint.expr.substitute({var: definition})
            result.append(LinConstraint(substituted, constraint.rel))
        return result, step

    lower: list[tuple[LinExpr, bool]] = []
    upper: list[tuple[LinExpr, bool]] = []
    for constraint in with_var:
        coeff = constraint.expr.coeff(var)
        rest = constraint.expr - LinExpr.make({var: coeff})
        bound = rest.scale(Fraction(-1, 1) / coeff)
        strict = constraint.rel is Relation.LT
        if coeff > 0:
            # coeff*var + rest <= 0  =>  var <= -rest/coeff
            upper.append((bound, strict))
        else:
            lower.append((bound, strict))

    for low, low_strict in lower:
        for up, up_strict in upper:
            # low <= var <= up  =>  low - up <= 0 (strict if either side strict)
            rel = Relation.LT if (low_strict or up_strict) else Relation.LE
            result.append(normalize_constraint(LinConstraint(low - up, rel)))
    step = EliminationStep(var, None, lower, upper)
    return result, step


def _choose_variable(constraints: Sequence[LinConstraint], candidates: set[Var]) -> Var:
    """Pick the candidate whose elimination creates the fewest new constraints."""
    best_var: Optional[Var] = None
    best_cost: Optional[int] = None
    for var in sorted(candidates):
        lower = upper = 0
        occurs_in_equality = False
        for constraint in constraints:
            coeff = constraint.expr.coeff(var)
            if coeff == 0:
                continue
            if constraint.rel is Relation.EQ:
                occurs_in_equality = True
            elif coeff > 0:
                upper += 1
            else:
                lower += 1
        cost = 0 if occurs_in_equality else lower * upper
        if best_cost is None or cost < best_cost:
            best_cost = cost
            best_var = var
            if cost == 0 and occurs_in_equality:
                break
    assert best_var is not None
    return best_var


def _prune(constraints: Iterable[LinConstraint]) -> Optional[list[LinConstraint]]:
    """Drop trivially-true constraints; return ``None`` on a trivial conflict."""
    pruned: list[LinConstraint] = []
    seen: set[LinConstraint] = set()
    for constraint in constraints:
        constraint = normalize_constraint(constraint)
        if is_trivial_true(constraint):
            continue
        if is_trivial_false(constraint):
            return None
        if constraint in seen:
            continue
        seen.add(constraint)
        pruned.append(constraint)
    return pruned


def satisfiable(
    constraints: Sequence[LinConstraint],
) -> Optional[dict[Var, Fraction]]:
    """Rational satisfiability with witness; ``None`` means unsatisfiable."""
    current = _prune(constraints)
    if current is None:
        return None
    steps: list[EliminationStep] = []
    while True:
        variables = {v for c in current for v in c.variables()}
        if not variables:
            break
        var = _choose_variable(current, variables)
        current, step = eliminate_variable(current, var)
        steps.append(step)
        current = _prune(current)
        if current is None:
            return None

    # All remaining constraints are trivially true; rebuild a model.
    model: dict[Var, Fraction] = {}
    for step in reversed(steps):
        model[step.var] = _reconstruct_value(step, model)
    return model


def _reconstruct_value(step: EliminationStep, model: dict[Var, Fraction]) -> Fraction:
    if step.definition is not None:
        return _evaluate(step.definition, model)
    lowers = [(_evaluate(e, model), strict) for e, strict in step.lower]
    uppers = [(_evaluate(e, model), strict) for e, strict in step.upper]
    low = max((v for v, _ in lowers), default=None)
    up = min((v for v, _ in uppers), default=None)
    if low is None and up is None:
        return Fraction(0)
    if low is None:
        assert up is not None
        return up - 1
    if up is None:
        return low + 1
    if low == up:
        return low
    return (low + up) / 2


def _evaluate(expr: LinExpr, model: dict[Var, Fraction]) -> Fraction:
    total = expr.const
    for atom, coeff in expr.terms:
        assert isinstance(atom, Var)
        total += coeff * model.get(atom, Fraction(0))
    return total


def project(
    constraints: Sequence[LinConstraint], eliminate: Iterable[Var]
) -> Optional[list[LinConstraint]]:
    """Existentially quantify ``eliminate`` away.

    Returns the projected constraint list, or ``None`` if the system is
    detected to be unsatisfiable during elimination (the projection of an
    empty set of points is "false").
    """
    current = _prune(constraints)
    if current is None:
        return None
    for var in eliminate:
        if all(c.expr.coeff(var) == 0 for c in current):
            continue
        current, _ = eliminate_variable(current, var)
        current = _prune(current)
        if current is None:
            return None
    return current
