"""The quantifier-free satisfiability solver.

:class:`SmtSolver` decides quantifier-free formulas of linear integer/rational
arithmetic with array reads (treated as uninterpreted function applications).
It expands the boolean structure into cubes and delegates each cube to the
:class:`~repro.smt.arrays.CubeSolver`.

The solver answers three kinds of queries used throughout the library:
satisfiability (with a witness model), entailment between formulas, and
equivalence.  Quantified formulas must be pre-processed by
:mod:`repro.smt.quant`; the convenience entry points of
:mod:`repro.smt.vcgen` do this automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional

from ..logic.formulas import Atom, Formula, Not, conjoin, negate
from ..logic.terms import Var
from ..logic.transform import dnf_cubes, quantifier_free
from ..logic.simplify import simplify
from .arrays import CubeSolver
from .lra import LraSolver

__all__ = ["SmtSolver", "SatResult"]


@dataclass
class SatResult:
    """Outcome of a satisfiability query."""

    satisfiable: bool
    model: Optional[dict[Var, Fraction]] = None
    approximate: bool = False


class SmtSolver:
    """Quantifier-free LIA/LRA + array-read solver with statistics."""

    def __init__(self, integer_mode: bool = True, bb_limit: int = 40) -> None:
        self.integer_mode = integer_mode
        self.lra = LraSolver(integer_mode=integer_mode, bb_limit=bb_limit)
        self.cube_solver = CubeSolver(self.lra)
        self.num_sat_queries = 0
        self.num_entailment_queries = 0

    # ------------------------------------------------------------------
    def check_sat(self, formula: Formula) -> SatResult:
        """Satisfiability of a quantifier-free formula."""
        if not quantifier_free(formula):
            raise ValueError(
                "SmtSolver only accepts quantifier-free formulas; "
                "use repro.smt.vcgen for quantified obligations"
            )
        self.num_sat_queries += 1
        formula = simplify(formula)
        cubes = dnf_cubes(formula)
        best_approx: Optional[SatResult] = None
        for cube in cubes:
            atoms: list[Atom] = []
            ok = True
            for literal in cube:
                if isinstance(literal, Atom):
                    atoms.append(literal)
                elif isinstance(literal, Not) and isinstance(literal.arg, Atom):
                    atoms.append(literal.arg.negated())
                else:
                    raise ValueError(f"unexpected literal in cube: {literal}")
            if not ok:
                continue
            result = self.cube_solver.check(atoms)
            if result.satisfiable:
                outcome = SatResult(True, result.model, result.approximate)
                if not result.approximate:
                    return outcome
                best_approx = outcome
        if best_approx is not None:
            return best_approx
        return SatResult(False)

    def is_sat(self, formula: Formula) -> bool:
        return self.check_sat(formula).satisfiable

    def is_unsat(self, formula: Formula) -> bool:
        return not self.is_sat(formula)

    def get_model(self, formula: Formula) -> Optional[dict[Var, Fraction]]:
        result = self.check_sat(formula)
        return result.model if result.satisfiable else None

    # ------------------------------------------------------------------
    def entails(self, antecedent: Formula, consequent: Formula) -> bool:
        """``antecedent |= consequent`` for quantifier-free formulas."""
        self.num_entailment_queries += 1
        return self.is_unsat(conjoin([antecedent, negate(consequent)]))

    def equivalent(self, lhs: Formula, rhs: Formula) -> bool:
        return self.entails(lhs, rhs) and self.entails(rhs, lhs)
