"""The quantifier-free satisfiability solver.

:class:`SmtSolver` decides quantifier-free formulas of linear integer/rational
arithmetic with array reads (treated as uninterpreted function applications).

The core is a **lazy case-splitting engine**: top-level conjuncts and unit
literals are asserted into one persistent incremental constraint store
(:class:`~repro.smt.simplex.IncrementalSimplex`), and boolean structure is
explored on demand — a disjunction is only split when every other conjunct
has already been propagated, and a branch whose partial constraint store is
already infeasible is pruned without ever enumerating its sub-cases
(UNSAT-core-style early exit).  Sibling branches share the tableau prefix of
the store through ``push``/``pop``, so a case split costs a few bound flips
instead of a from-scratch solve.  Disequalities and the functionality axiom
for array reads are themselves handled as lazy splits.  The eager
disjunctive-normal-form expansion of earlier versions
(:func:`~repro.logic.transform.dnf_cubes`) survives only as
:meth:`SmtSolver.check_sat_eager`, kept as a differential-testing oracle.

Solved queries are memoised in a normalised-query cache keyed on the interned
(hash-consed) formula, so repeated obligations — the CEGAR loop re-checks the
same verification conditions across abstract-reachability rounds — are
answered without touching the theory solver.

For query *families* that share a common core — the abstract-post oracle asks
"does predicate p hold after this edge?" for every precision predicate
against one ``(state, transition)`` pair — :meth:`SmtSolver.context` opens a
:class:`SolverContext`: the core is asserted **once** into a persistent
constraint store, and each family member is decided by scoping only its own
(usually single-literal) assumption with ``push``/``pop``.  The simplex
tableau, the asserted-literal set used for syntactic propagation, and the
read-flattening tables all survive across the family's checks.

The solver answers three kinds of queries used throughout the library:
satisfiability (with a witness model), entailment between formulas, and
equivalence.  Quantified formulas must be pre-processed by
:mod:`repro.smt.quant`; the convenience entry points of
:mod:`repro.smt.vcgen` do this automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Sequence

from ..logic.formulas import (
    And,
    Atom,
    BoolConst,
    Formula,
    Not,
    Or,
    Relation,
    TRUE,
    conjoin,
    eq,
    negate,
)
from ..logic.terms import ArrayRead, LinExpr, Var
from ..logic.transform import FreshNames, dnf_cubes, quantifier_free, to_nnf
from ..logic.simplify import simplify
from .arrays import CubeSolver, find_functionality_violation, flatten_reads
from .lra import LraSolver, assert_atoms, integer_feasible
from .simplex import IncrementalSimplex

__all__ = ["SmtSolver", "SatResult", "SolverStats", "SolverContext"]


@dataclass
class SatResult:
    """Outcome of a satisfiability query."""

    satisfiable: bool
    model: Optional[dict[Var, Fraction]] = None
    approximate: bool = False


@dataclass
class SolverStats:
    """Counters of the lazy engine (reset per :class:`SmtSolver`)."""

    #: disjuncts explored by the lazy splitter
    splits: int = 0
    #: feasibility checks of a partial constraint store before branching
    prune_checks: int = 0
    #: branches discarded because the partial store was already infeasible
    pruned_branches: int = 0
    #: full leaf checks (integer branch-and-bound + functionality loop)
    leaf_checks: int = 0
    #: case splits forced by the array functionality axiom
    functionality_splits: int = 0
    #: memoised query answers served without solving
    cache_hits: int = 0
    #: conjunction-level feasibility decisions by the incremental simplex:
    #: pivot-loop checks plus assert-time bound conflicts, across pruning,
    #: lookaheads, branch-and-bound and functionality loops — the honest
    #: "theory solver call" count.
    simplex_checks: int = 0
    #: assumption checks answered inside a :class:`SolverContext` (each is
    #: one solver-level decision, like a ``check_sat`` call, but over a
    #: shared asserted core instead of a from-scratch store).
    context_checks: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "splits": self.splits,
            "prune_checks": self.prune_checks,
            "pruned_branches": self.pruned_branches,
            "leaf_checks": self.leaf_checks,
            "functionality_splits": self.functionality_splits,
            "cache_hits": self.cache_hits,
            "simplex_checks": self.simplex_checks,
            "context_checks": self.context_checks,
        }


class _LazySearch:
    """One lazy case-splitting search over a persistent constraint store."""

    def __init__(self, integer_mode: bool, bb_limit: int, stats: SolverStats) -> None:
        self.integer_mode = integer_mode
        self.bb_limit = bb_limit
        self.stats = stats
        self.simplex = IncrementalSimplex()
        self._fresh = FreshNames("rd")
        #: canonical (read-flattened) ArrayRead -> its value variable.
        self._read_vars: dict[ArrayRead, Var] = {}
        #: atom -> (flattened atom, read triples it mentions); atoms are
        #: interned, so this avoids re-walking shared expressions per branch.
        self._flatten_cache: dict[Atom, tuple[Atom, tuple[tuple[Var, str, LinExpr], ...]]] = {}
        #: (value var, array, flattened index) triples asserted somewhere on
        #: the current branch; length marks give push/pop scoping.
        self._active_reads: list[tuple[Var, str, LinExpr]] = []
        self._active_vars: set[Var] = set()
        self._read_marks: list[int] = []
        #: flattened atoms asserted on the current branch, for syntactic
        #: boolean constraint propagation (scoped like the active reads).
        self._asserted: list[Atom] = []
        self._asserted_set: set[Atom] = set()

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def solve(self, formula: Formula) -> SatResult:
        units, disjunctions = [], []
        if not _decompose(formula, units, disjunctions):
            return SatResult(False)
        return self._solve(units, disjunctions)

    # ------------------------------------------------------------------
    # The splitter
    # ------------------------------------------------------------------
    def _solve(self, units: list[Atom], disjunctions: list[Or]) -> SatResult:
        self.simplex.push()
        mark = len(self._active_reads)
        self._read_marks.append(mark)
        asserted_mark = len(self._asserted)
        try:
            pending: list[Or] = []
            seen: set[Or] = set()
            for disjunction in disjunctions:
                if disjunction not in seen:
                    seen.add(disjunction)
                    pending.append(disjunction)
            if not self._assert_units(units, pending, seen):
                return SatResult(False)

            while True:
                if not pending:
                    self.stats.leaf_checks += 1
                    return self._leaf_check(decided=frozenset())

                # Conflict-driven pruning: if the units asserted so far
                # already contradict the store, the whole subtree below is
                # infeasible and no disjunction needs to be expanded.
                self.stats.prune_checks += 1
                if not self.simplex.check():
                    self.stats.pruned_branches += 1
                    return SatResult(False)

                # Filter every pending disjunction: syntactic boolean
                # constraint propagation against the asserted literals, then
                # a theory lookahead against the current store.  Disjuncts
                # that cannot survive are dropped; an empty disjunction
                # refutes the branch, a single survivor is propagated as a
                # unit, and otherwise we branch on the most constrained
                # disjunction (fail-first).
                propagated = False
                best: Optional[list[tuple[list[Atom], list[Or]]]] = None
                best_index = -1
                for index in range(len(pending)):
                    branches = self._filter_disjunction(pending[index])
                    if not branches:
                        return SatResult(False)
                    if len(branches) == 1:
                        pending.pop(index)
                        sub_units, sub_disjunctions = branches[0]
                        for disjunction in sub_disjunctions:
                            if disjunction not in seen:
                                seen.add(disjunction)
                                pending.append(disjunction)
                        if not self._assert_units(sub_units, pending, seen):
                            return SatResult(False)
                        propagated = True
                        break
                    if best is None or len(branches) < len(best):
                        best = branches
                        best_index = index
                if propagated:
                    continue

                assert best is not None
                pending.pop(best_index)
                best_approx: Optional[SatResult] = None
                for sub_units, sub_disjunctions in best:
                    self.stats.splits += 1
                    result = self._solve(sub_units, pending + sub_disjunctions)
                    if result.satisfiable:
                        if not result.approximate:
                            return result
                        best_approx = result
                return best_approx if best_approx is not None else SatResult(False)
        finally:
            self._pop_reads(self._read_marks.pop())
            self._asserted_set.difference_update(self._asserted[asserted_mark:])
            del self._asserted[asserted_mark:]
            self.simplex.pop()

    def _filter_disjunction(self, chosen: Or) -> list[tuple[list[Atom], list[Or]]]:
        """Surviving branches of a disjunction under the current store."""
        asserted = self._asserted_set
        branches: list[tuple[list[Atom], list[Or]]] = []
        for disjunct in chosen.args:
            if isinstance(disjunct, Atom):
                # Syntactic propagation on interned literals: an asserted
                # disjunct satisfies the whole disjunction; an asserted
                # negation eliminates the disjunct without a theory call.
                # The asserted set holds *flattened* atoms, so compare the
                # flattened form (no read activation happens here).
                flat = self._flatten_only(disjunct)
                if flat in asserted:
                    return [([], [])]
                if flat.negated() in asserted:
                    continue
            sub_units: list[Atom] = []
            sub_disjunctions: list[Or] = []
            if not _decompose(disjunct, sub_units, sub_disjunctions):
                continue
            if sub_units:
                self.simplex.push()
                look_mark = len(self._active_reads)
                feasible = (
                    self._assert_units(sub_units, sub_disjunctions, None)
                    and self.simplex.check()
                )
                self._pop_reads(look_mark)
                self.simplex.pop()
                if not feasible:
                    self.stats.pruned_branches += 1
                    continue
            branches.append((sub_units, sub_disjunctions))
        return branches

    def _pop_reads(self, mark: int) -> None:
        for triple in self._active_reads[mark:]:
            self._active_vars.discard(triple[0])
        del self._active_reads[mark:]

    def _assert_units(
        self, units: list[Atom], pending: list[Or], seen: Optional[set[Or]]
    ) -> bool:
        """Flatten and assert unit literals; NE units become lazy splits.

        Appends any disequality splits to ``pending`` (deduplicated against
        ``seen`` when given); False on conflict.
        """
        flattened: list[Atom] = []
        for literal in units:
            atom = self._flatten_atom(literal)
            if atom.rel is Relation.NE:
                # Lazy disequality split: e != 0 becomes e < 0 \/ -e < 0.
                split = Or((Atom(atom.expr, Relation.LT), Atom(-atom.expr, Relation.LT)))
                if seen is None:
                    pending.append(split)
                elif split not in seen:
                    seen.add(split)
                    pending.append(split)
                continue
            flattened.append(atom)
        if seen is not None:
            for atom in flattened:
                if atom not in self._asserted_set:
                    self._asserted_set.add(atom)
                    self._asserted.append(atom)
        return assert_atoms(self.simplex, flattened, self.integer_mode)

    # ------------------------------------------------------------------
    # Leaf checks: integer branch-and-bound plus array functionality.
    # ------------------------------------------------------------------
    def _leaf_check(self, decided: frozenset) -> SatResult:
        outcome = integer_feasible(self.simplex, self.bb_limit, self.integer_mode)
        if not outcome.satisfiable:
            return SatResult(False)
        assert outcome.model is not None
        violation = find_functionality_violation(
            self._active_reads, outcome.model, decided
        )
        if violation is None:
            return SatResult(True, outcome.model, outcome.approximate)
        var_a, var_b, index_a, index_b = violation
        self.stats.functionality_splits += 1
        decided = decided | {frozenset((var_a, var_b))}
        cases: Sequence[list[Atom]] = (
            # Case 1: the indices coincide, so the values must coincide.
            [eq(index_a, index_b), eq(var_a, var_b)],
            # Cases 2 and 3: the indices are ordered strictly.
            [Atom(index_a - index_b, Relation.LT)],
            [Atom(index_b - index_a, Relation.LT)],
        )
        for case in cases:
            self.simplex.push()
            try:
                if assert_atoms(self.simplex, case, self.integer_mode):
                    result = self._leaf_check(decided)
                    if result.satisfiable:
                        return result
            finally:
                self.simplex.pop()
        return SatResult(False)

    # ------------------------------------------------------------------
    # Read flattening (uninterpreted-function view of array reads)
    # ------------------------------------------------------------------
    def _flatten_atom(self, atom: Atom) -> Atom:
        """Flatten reads to value variables and activate them on this branch.

        The canonicalisation itself is the shared
        :func:`repro.smt.arrays.flatten_reads`; this wrapper adds the
        per-search memo (atoms are interned, so shared expressions flatten
        once) and the branch-scoped activation of the reads involved.
        """
        flat_atom, triples = self._flatten_entry(atom)
        for triple in triples:
            if triple[0] not in self._active_vars:
                self._active_vars.add(triple[0])
                self._active_reads.append(triple)
        return flat_atom

    def _flatten_only(self, atom: Atom) -> Atom:
        """Flattened form of an atom without activating its reads."""
        return self._flatten_entry(atom)[0]

    def _flatten_entry(
        self, atom: Atom
    ) -> tuple[Atom, tuple[tuple[Var, str, LinExpr], ...]]:
        cached = self._flatten_cache.get(atom)
        if cached is None:
            if not atom.expr.array_reads():
                cached = (atom, ())
            else:
                triples: list[tuple[Var, str, LinExpr]] = []
                flat = flatten_reads(atom.expr, self._value_var_of, triples)
                cached = (Atom(flat, atom.rel), tuple(triples))
            self._flatten_cache[atom] = cached
        return cached

    def _value_var_of(self, canonical: ArrayRead) -> Var:
        value_var = self._read_vars.get(canonical)
        if value_var is None:
            value_var = self._fresh.fresh(canonical.array)
            self._read_vars[canonical] = value_var
        return value_var


def _decompose(formula: Formula, units: list[Atom], disjunctions: list[Or]) -> bool:
    """Split into unit literals and disjunctions; False when trivially unsat."""
    if isinstance(formula, BoolConst):
        return formula.value
    if isinstance(formula, Atom):
        units.append(formula)
        return True
    if isinstance(formula, Not):
        inner = formula.arg
        if isinstance(inner, Atom):
            units.append(inner.negated())
            return True
        raise ValueError(f"unexpected literal in lazy split: {formula}")
    if isinstance(formula, And):
        for arg in formula.args:
            if not _decompose(arg, units, disjunctions):
                return False
        return True
    if isinstance(formula, Or):
        disjunctions.append(formula)
        return True
    raise ValueError(f"unexpected formula in lazy split: {formula!r}")


class SolverContext:
    """An incremental assumption-context over one persistent constraint store.

    Created by :meth:`SmtSolver.context`.  :meth:`assert_base` installs
    formulas *permanently* — the shared core of a query family — by asserting
    their unit literals into the context's :class:`IncrementalSimplex` (no
    enclosing push, so the bounds survive every later backtrack) and parking
    their disjunctions.  :meth:`check` then decides ``base ∧ assumption``:
    the assumption's units are asserted inside a ``push``/``pop`` scope of
    the *same* store, so sibling checks share the tableau, the slack-variable
    interning, the asserted-literal set used for syntactic propagation, and
    the read-flattening tables.  This is the query shape of the batched
    abstract-post oracle (one core, many negated predicates) and the reason
    it beats one cold :meth:`SmtSolver.check_sat` per predicate.

    Inputs must be quantifier-free and in the solver's literal discipline
    after normalisation (the context normalises with the solver's shared
    simplify+NNF memo); quantified obligations go through
    :mod:`repro.smt.vcgen` instead.
    """

    def __init__(self, solver: "SmtSolver") -> None:
        self._solver = solver
        self._search = _LazySearch(solver.integer_mode, solver.bb_limit, solver.stats)
        #: disjunctions of the asserted base, replayed into every check.
        self._base_disjunctions: list[Or] = []
        self._seen: set[Or] = set()
        #: True once the base itself is unsatisfiable — every later check is
        #: answered False without touching the store.
        self._base_failed = False
        self.num_checks = 0

    @property
    def base_failed(self) -> bool:
        return self._base_failed

    def assert_base(self, formula: Formula) -> bool:
        """Permanently assert ``formula``; False when the base became unsat."""
        if self._base_failed:
            return False
        normalised = self._solver._normalise(formula)
        units: list[Atom] = []
        disjunctions: list[Or] = []
        if not _decompose(normalised, units, disjunctions):
            self._base_failed = True
            return False
        for disjunction in disjunctions:
            if disjunction not in self._seen:
                self._seen.add(disjunction)
                self._base_disjunctions.append(disjunction)
        # No push around the base: these bounds (and any lazy NE splits,
        # appended to the base disjunctions) are the permanent floor every
        # check's push/pop scope sits on.
        if not self._search._assert_units(units, self._base_disjunctions, self._seen):
            self._base_failed = True
            return False
        return True

    def check(self, assumption: Formula = TRUE) -> SatResult:
        """Satisfiability of ``base ∧ assumption`` (assumption scoped to this call)."""
        self.num_checks += 1
        stats = self._solver.stats
        stats.context_checks += 1
        if self._base_failed:
            return SatResult(False)
        normalised = self._solver._normalise(assumption)
        units: list[Atom] = []
        disjunctions: list[Or] = []
        if not _decompose(normalised, units, disjunctions):
            return SatResult(False)
        simplex = self._search.simplex
        before = simplex.num_checks + simplex.num_assert_conflicts
        try:
            result = self._search._solve(
                units, self._base_disjunctions + disjunctions
            )
        finally:
            stats.simplex_checks += (
                simplex.num_checks + simplex.num_assert_conflicts - before
            )
        model = dict(result.model) if result.model is not None else None
        return SatResult(result.satisfiable, model, result.approximate)

    def is_unsat(self, assumption: Formula = TRUE) -> bool:
        return not self.check(assumption).satisfiable


class SmtSolver:
    """Quantifier-free LIA/LRA + array-read solver with statistics.

    ``check_sat``/``entails``/``equivalent`` answers are memoised in
    ``_sat_cache`` keyed on the interned normalised formula; one solver
    instance shared across CEGAR iterations (as :class:`~repro.smt.vcgen.
    VcChecker` does) therefore reuses verdicts across abstract-reachability
    and refinement rounds.
    """

    def __init__(self, integer_mode: bool = True, bb_limit: int = 40) -> None:
        self.integer_mode = integer_mode
        self.bb_limit = bb_limit
        self.lra = LraSolver(integer_mode=integer_mode, bb_limit=bb_limit)
        self.cube_solver = CubeSolver(self.lra)
        self.num_sat_queries = 0
        self.num_entailment_queries = 0
        self.num_contexts = 0
        self.stats = SolverStats()
        self._sat_cache: dict[Formula, SatResult] = {}
        #: raw interned formula -> its normalised (simplify + NNF) form, so
        #: repeat queries skip the two formula-tree walks entirely.
        self._normal_form: dict[Formula, Formula] = {}

    def _normalise(self, formula: Formula) -> Formula:
        """The memoised simplify+NNF pass shared with :class:`SolverContext`."""
        normalised = self._normal_form.get(formula)
        if normalised is None:
            normalised = to_nnf(simplify(formula))
            self._normal_form[formula] = normalised
        return normalised

    def context(self) -> SolverContext:
        """Open a fresh incremental assumption-context (see :class:`SolverContext`)."""
        self.num_contexts += 1
        return SolverContext(self)

    # ------------------------------------------------------------------
    def check_sat(self, formula: Formula) -> SatResult:
        """Satisfiability of a quantifier-free formula (lazy splitting)."""
        if not quantifier_free(formula):
            raise ValueError(
                "SmtSolver only accepts quantifier-free formulas; "
                "use repro.smt.vcgen for quantified obligations"
            )
        self.num_sat_queries += 1
        normalised = self._normalise(formula)
        cached = self._sat_cache.get(normalised)
        if cached is not None:
            self.stats.cache_hits += 1
            # Hand out a fresh model dict so callers cannot corrupt the cache.
            model = dict(cached.model) if cached.model is not None else None
            return SatResult(cached.satisfiable, model, cached.approximate)
        search = _LazySearch(self.integer_mode, self.bb_limit, self.stats)
        result = search.solve(normalised)
        self.stats.simplex_checks += (
            search.simplex.num_checks + search.simplex.num_assert_conflicts
        )
        self._sat_cache[normalised] = result
        model = dict(result.model) if result.model is not None else None
        return SatResult(result.satisfiable, model, result.approximate)

    def check_sat_eager(self, formula: Formula, limit: int = 200_000) -> SatResult:
        """Reference implementation via eager DNF expansion.

        Kept as a differential-testing oracle for the lazy engine (and for
        measuring how many theory calls laziness saves).  ``limit`` bounds
        the number of cubes; pathological inputs raise ``ValueError`` here
        while the lazy engine handles them without materialising the DNF.
        """
        if not quantifier_free(formula):
            raise ValueError(
                "SmtSolver only accepts quantifier-free formulas; "
                "use repro.smt.vcgen for quantified obligations"
            )
        self.num_sat_queries += 1
        formula = simplify(formula)
        cubes = dnf_cubes(formula, limit=limit)
        best_approx: Optional[SatResult] = None
        for cube in cubes:
            atoms: list[Atom] = []
            for literal in cube:
                if isinstance(literal, Atom):
                    atoms.append(literal)
                elif isinstance(literal, Not) and isinstance(literal.arg, Atom):
                    atoms.append(literal.arg.negated())
                else:
                    raise ValueError(f"unexpected literal in cube: {literal}")
            result = self.cube_solver.check(atoms)
            if result.satisfiable:
                outcome = SatResult(True, result.model, result.approximate)
                if not result.approximate:
                    return outcome
                best_approx = outcome
        if best_approx is not None:
            return best_approx
        return SatResult(False)

    def is_sat(self, formula: Formula) -> bool:
        return self.check_sat(formula).satisfiable

    def is_unsat(self, formula: Formula) -> bool:
        return not self.is_sat(formula)

    def get_model(self, formula: Formula) -> Optional[dict[Var, Fraction]]:
        result = self.check_sat(formula)
        return result.model if result.satisfiable else None

    # ------------------------------------------------------------------
    def entails(self, antecedent: Formula, consequent: Formula) -> bool:
        """``antecedent |= consequent`` for quantifier-free formulas."""
        self.num_entailment_queries += 1
        return self.is_unsat(conjoin([antecedent, negate(consequent)]))

    def equivalent(self, lhs: Formula, rhs: Formula) -> bool:
        return self.entails(lhs, rhs) and self.entails(rhs, lhs)

    # ------------------------------------------------------------------
    def cache_info(self) -> dict[str, int]:
        """Cache and split statistics (for logging and benchmarks)."""
        info = self.stats.as_dict()
        info["cached_queries"] = len(self._sat_cache)
        info["contexts_created"] = self.num_contexts
        return info
