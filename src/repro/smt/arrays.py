"""Array reasoning: store resolution and read handling.

Two mechanisms live here.

1. :func:`resolve_stores` performs the *read-over-write* case split of
   Section 4.2 of the paper on the formula level: a read ``a1[t]`` where
   ``a1 = store(a0, i, v)`` is replaced by the disjunction of the two cases
   ``t = i`` (the read returns the written value ``v``) and ``t != i`` (the
   read falls through to ``a0[t]``).

2. :class:`CubeSolver` decides conjunctions that still contain reads of
   *base* (store-free) arrays.  Reads are treated as applications of
   uninterpreted functions: each distinct read is replaced by a fresh value
   variable and the functionality axiom ("equal indices give equal values")
   is enforced lazily by splitting on the order of the two indices whenever a
   candidate model violates it.

   The lazy case-splitting solver in :mod:`repro.smt.solver` implements the
   same read flattening and functionality splits natively on its persistent
   constraint store; :class:`CubeSolver` remains as the conjunction-level
   engine behind the eager-DNF reference path (``check_sat_eager``).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Sequence

from ..logic.formulas import (
    And,
    Atom,
    BoolConst,
    Forall,
    Formula,
    Not,
    Or,
    Relation,
    conjoin,
    disjoin,
    eq,
    ne,
)
from ..logic.terms import ArrayRead, LinExpr, Var
from ..logic.transform import FreshNames
from .lra import LraResult, LraSolver

__all__ = [
    "Store",
    "resolve_stores",
    "CubeSolver",
    "ground_reads",
    "flatten_reads",
    "find_functionality_violation",
]


@dataclass(frozen=True)
class Store:
    """A single array write: ``target = store(base, index, value)``."""

    base: str
    index: LinExpr
    value: LinExpr


def ground_reads(formula: Formula) -> set[ArrayRead]:
    """Array reads of a formula that are not under a quantifier.

    Reads whose index mentions a quantified variable are handled during
    instantiation instead, exactly as in the paper's reduction.
    """
    reads: set[ArrayRead] = set()
    _collect_ground_reads(formula, reads)
    return reads


def _collect_ground_reads(formula: Formula, out: set[ArrayRead]) -> None:
    if isinstance(formula, BoolConst):
        return
    if isinstance(formula, Atom):
        out.update(formula.expr.array_reads())
        return
    if isinstance(formula, Not):
        _collect_ground_reads(formula.arg, out)
        return
    if isinstance(formula, (And, Or)):
        for arg in formula.args:
            _collect_ground_reads(arg, out)
        return
    if isinstance(formula, Forall):
        # Skip: reads under the quantifier are not ground.
        return
    raise TypeError(f"unexpected formula {formula!r}")


def resolve_stores(formula: Formula, stores: dict[str, Store]) -> Formula:
    """Eliminate reads of written-to array versions by case splitting.

    ``stores`` maps an array symbol to the store that defines it; symbols not
    in the map are base arrays.  The result contains only reads of base
    arrays (outside quantifiers); reads under quantifiers are expected to
    target base arrays already.
    """
    for _ in range(10_000):
        target = _find_stored_read(formula, stores)
        if target is None:
            return formula
        store = stores[target.array]
        hit = formula.substitute_reads({target: store.value})
        miss = formula.substitute_reads(
            {target: LinExpr.make({ArrayRead(store.base, target.index): 1})}
        )
        formula = disjoin(
            [
                conjoin([eq(target.index, store.index), hit]),
                conjoin([ne(target.index, store.index), miss]),
            ]
        )
    raise RuntimeError("store resolution did not terminate")


def _find_stored_read(formula: Formula, stores: dict[str, Store]) -> Optional[ArrayRead]:
    for read in sorted(ground_reads(formula), key=str):
        if read.array in stores:
            return read
    return None


def flatten_reads(
    expr: LinExpr,
    value_var_of,
    triples: list[tuple[Var, str, LinExpr]],
) -> LinExpr:
    """Replace array reads by value variables, innermost indices first.

    ``value_var_of`` maps a canonical (read-flattened) :class:`ArrayRead` to
    its value variable — the caller owns the interning policy.  Every read
    encountered is appended to ``triples`` as ``(value var, array, flattened
    index)``; duplicates are possible and left to the caller to ignore.
    This is the single source of truth for read canonicalisation, shared by
    the eager :class:`CubeSolver` and the lazy engine in
    :mod:`repro.smt.solver`.
    """
    reads = sorted(expr.array_reads(), key=lambda r: len(str(r)))
    if not reads:
        return expr
    substitution: dict[ArrayRead, LinExpr] = {}
    for read in reads:
        flat_index = flatten_reads(read.index, value_var_of, triples)
        canonical = ArrayRead(read.array, flat_index)
        value_var = value_var_of(canonical)
        triples.append((value_var, read.array, flat_index))
        substitution[read] = LinExpr.make({value_var: 1})
    return expr.substitute_reads(substitution)


def _evaluate_flat(expr: LinExpr, model: dict[Var, Fraction]) -> Fraction:
    total = expr.const
    for atom, coeff in expr.terms:
        assert isinstance(atom, Var)
        total += coeff * model.get(atom, Fraction(0))
    return total


def find_functionality_violation(
    reads: Sequence[tuple[Var, str, LinExpr]],
    model: dict[Var, Fraction],
    decided,
) -> Optional[tuple[Var, Var, LinExpr, LinExpr]]:
    """First pair of same-array reads whose model violates functionality.

    ``reads`` holds ``(value var, array, flattened index)`` triples; a pair
    violates the axiom when the index expressions evaluate equally under
    ``model`` but the value variables differ.  Pairs recorded in ``decided``
    (as ``frozenset((var_a, var_b))``) are skipped.  Shared by both solver
    engines.
    """
    items = sorted(reads, key=lambda item: item[0].name)
    for position, (var_a, array_a, index_a) in enumerate(items):
        for var_b, array_b, index_b in items[position + 1 :]:
            if array_a != array_b:
                continue
            if frozenset((var_a, var_b)) in decided:
                continue
            value_a = _evaluate_flat(index_a, model)
            value_b = _evaluate_flat(index_b, model)
            if value_a == value_b and model.get(var_a, Fraction(0)) != model.get(
                var_b, Fraction(0)
            ):
                return var_a, var_b, index_a, index_b
    return None


class CubeSolver:
    """Decide conjunctions of atoms over integers with base-array reads."""

    def __init__(self, lra: Optional[LraSolver] = None) -> None:
        self.lra = lra or LraSolver()
        self._fresh = FreshNames("rd")

    # ------------------------------------------------------------------
    def check(self, atoms: Sequence[Atom]) -> LraResult:
        """Satisfiability of the conjunction of ``atoms``."""
        # 1. split disequalities
        for position, atom in enumerate(atoms):
            if atom.rel is Relation.NE:
                rest = list(atoms[:position]) + list(atoms[position + 1 :])
                less = self.check(rest + [Atom(atom.expr, Relation.LT)])
                if less.satisfiable:
                    return less
                return self.check(rest + [Atom(-atom.expr, Relation.LT)])

        # 2. flatten array reads into fresh value variables
        flattened, reads = self._flatten(atoms)
        return self._check_functional(flattened, reads, decided=set())

    # ------------------------------------------------------------------
    def _flatten(
        self, atoms: Sequence[Atom]
    ) -> tuple[list[Atom], list[tuple[Var, str, LinExpr]]]:
        mapping: dict[ArrayRead, Var] = {}

        def value_var_of(canonical: ArrayRead) -> Var:
            value_var = mapping.get(canonical)
            if value_var is None:
                value_var = self._fresh.fresh(canonical.array)
                mapping[canonical] = value_var
            return value_var

        triples: list[tuple[Var, str, LinExpr]] = []
        result: list[Atom] = []
        for atom in atoms:
            result.append(Atom(flatten_reads(atom.expr, value_var_of, triples), atom.rel))
        seen: set[Var] = set()
        unique: list[tuple[Var, str, LinExpr]] = []
        for triple in triples:
            if triple[0] not in seen:
                seen.add(triple[0])
                unique.append(triple)
        return result, unique

    # ------------------------------------------------------------------
    def _check_functional(
        self,
        atoms: list[Atom],
        reads: list[tuple[Var, str, LinExpr]],
        decided: frozenset | set,
    ) -> LraResult:
        result = self.lra.check(atoms)
        if not result.satisfiable:
            return result
        assert result.model is not None
        violation = find_functionality_violation(reads, result.model, decided)
        if violation is None:
            return result
        var_a, var_b, index_a, index_b = violation
        decided = set(decided) | {frozenset((var_a, var_b))}
        # Case 1: the indices coincide, so the values must coincide.
        equal_case = atoms + [eq(index_a, index_b), eq(var_a, var_b)]
        outcome = self._check_functional(equal_case, reads, decided)
        if outcome.satisfiable:
            return outcome
        # Cases 2 and 3: the indices are ordered strictly.
        for first, second in ((index_a, index_b), (index_b, index_a)):
            ordered = atoms + [Atom(first - second, Relation.LT)]
            outcome = self._check_functional(ordered, reads, decided)
            if outcome.satisfiable:
                return outcome
        return LraResult(False)
