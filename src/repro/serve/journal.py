"""The durable request journal: a write-ahead log for accepted work.

The daemon's promise is *at-least-once visibility*: once a verify request
has been admitted, a crash of the daemon must not silently forget it.  The
journal makes admission durable — every admitted engine run appends one
``accepted`` record (name, source, options, fingerprint, client id)
*before* the run starts, and one ``answered`` record after its response is
handed to the transport.  A daemon restarted on the same ``--request-journal``
path replays the log, drops any torn tail a crashed writer left behind,
and reports (and with ``--recover`` re-executes) the accepted-but-unanswered
remainder.

The on-disk format deliberately mirrors the precision store's ``RJN1``
journal (:mod:`repro.core.api`): a framed, append-only, fsync-per-record
log —

    ``b"RQJ1"`` · 4-byte big-endian record length · UTF-8 JSON record

— with the same recovery discipline: replay intact frames in order, stop
at the first frame whose declared length runs past end-of-file (a torn
tail: the writer died mid-``write``) or whose bytes fail to decode.  JSON
rather than pickle because records carry client-supplied source text and
options — human-greppable and safe to load from a file an operator may
have hand-edited.

Single-writer: the journal belongs to one daemon process and every call
happens on its event loop, so there is no internal locking (unlike the
multi-session precision store).  Recovery compacts the file down to the
unanswered records, and a busy daemon re-compacts whenever the log
outgrows :data:`JOURNAL_COMPACT_BYTES`, so the file stays proportional to
the *outstanding* work, not the lifetime request count.

Fault injection: appends fire the ``journal-append`` site.  The
``journal-torn-write`` kind makes the writer emit a frame whose header
declares the full record length but whose payload stops half way — byte
for byte what a crash between ``write`` and ``fsync`` leaves behind — and
recovery must shrug it off.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Optional, Union

from ..core import faults

__all__ = ["RequestJournal", "JOURNAL_MAGIC", "JOURNAL_COMPACT_BYTES"]

#: Frame magic for the request journal (the store's journal is ``RJN1``).
JOURNAL_MAGIC = b"RQJ1"

#: Re-compact (rewrite unanswered-only) once the log outgrows this.
JOURNAL_COMPACT_BYTES = 256 * 1024


class RequestJournal:
    """Append-only WAL of accepted verify requests and their answers.

    Opening the journal replays the existing file: intact ``accepted``
    records without a matching ``answered`` record become the
    :attr:`recovered` list (the work a previous daemon accepted but never
    answered), torn or undecodable tails are dropped (counted in
    :attr:`torn_dropped`), and the file is compacted down to exactly the
    unanswered records — with their original sequence numbers, so an
    operator can correlate across restarts.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        #: Unanswered accepted records, by sequence number (insertion order).
        self._outstanding: dict[int, dict[str, Any]] = {}
        #: Records a previous incarnation accepted but never answered.
        self.recovered: list[dict[str, Any]] = []
        #: Torn/undecodable trailing frames dropped during replay.
        self.torn_dropped = 0
        #: Lifetime counters for stats (this incarnation only).
        self.accepted = 0
        self.answered = 0
        self._next_seq = 1
        self._handle = None
        self._recover_existing()
        self._open_for_append()

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _recover_existing(self) -> None:
        if not self.path.exists():
            return
        try:
            data = self.path.read_bytes()
        except OSError:
            return
        answered_seqs: set[int] = set()
        accepted: dict[int, dict[str, Any]] = {}
        offset = 0
        while offset < len(data):
            if offset + 8 > len(data) or data[offset : offset + 4] != JOURNAL_MAGIC:
                self.torn_dropped += 1
                break
            length = int.from_bytes(data[offset + 4 : offset + 8], "big")
            end = offset + 8 + length
            if end > len(data):
                self.torn_dropped += 1  # torn tail: writer died mid-record
                break
            try:
                record = json.loads(data[offset + 8 : end].decode("utf-8"))
                kind = record["type"]
                seq = int(record["seq"])
            except Exception:
                self.torn_dropped += 1
                break
            if kind == "accepted":
                accepted[seq] = record
            elif kind == "answered":
                answered_seqs.add(seq)
                accepted.pop(seq, None)
            offset = end
        self.recovered = [accepted[seq] for seq in sorted(accepted)]
        self._outstanding = dict(sorted(accepted.items()))
        all_seqs = set(accepted) | answered_seqs
        self._next_seq = (max(all_seqs) + 1) if all_seqs else 1
        self._rewrite_compacted()

    def _rewrite_compacted(self) -> None:
        """Rewrite the file to exactly the outstanding records (atomic)."""
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:  # pragma: no cover - defensive
                pass
            self._handle = None
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with open(tmp, "wb") as handle:
            for record in self._outstanding.values():
                handle.write(self._frame(record))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    @staticmethod
    def _frame(record: dict[str, Any]) -> bytes:
        body = json.dumps(record, sort_keys=True).encode("utf-8")
        return JOURNAL_MAGIC + len(body).to_bytes(4, "big") + body

    def _open_for_append(self) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "ab")

    def _append(self, record: dict[str, Any], fault_keys: tuple) -> None:
        self._open_for_append()
        frame = self._frame(record)
        spec = faults.fire("journal-append", fault_keys)
        if spec is not None and spec.kind == "journal-torn-write":
            # Simulate a crash between write() and fsync(): the frame header
            # promises the full record but the payload stops half way.
            frame = frame[: 8 + max(1, (len(frame) - 8) // 2)]
        self._handle.write(frame)
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def accept(
        self,
        name: str,
        source: str,
        options: dict[str, Any],
        fingerprint: str,
        client_id: Optional[str] = None,
    ) -> int:
        """Durably record an admitted request; returns its sequence number."""
        seq = self._next_seq
        self._next_seq += 1
        record: dict[str, Any] = {
            "type": "accepted",
            "seq": seq,
            "name": name,
            "source": source,
            "options": options,
            "fingerprint": fingerprint,
        }
        if client_id is not None:
            record["client_id"] = client_id
        self._outstanding[seq] = record
        self.accepted += 1
        self._append(record, (name or "*", fingerprint))
        return seq

    def answer(self, seq: int, verdict: Optional[str]) -> None:
        """Mark an accepted request answered (its response reached the wire)."""
        record = self._outstanding.pop(seq, None)
        if record is None:
            return  # unknown / doubly-answered: idempotent
        self.answered += 1
        self._append(
            {"type": "answered", "seq": seq, "verdict": verdict},
            (record.get("name") or "*", record.get("fingerprint") or "*"),
        )
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        try:
            size = self.path.stat().st_size
        except OSError:  # pragma: no cover - defensive
            return
        if size > JOURNAL_COMPACT_BYTES:
            self._rewrite_compacted()
            self._open_for_append()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def lag(self) -> int:
        """Accepted-but-unanswered count (including recovered records)."""
        return len(self._outstanding)

    def outstanding(self) -> list[dict[str, Any]]:
        """The unanswered accepted records, oldest first."""
        return list(self._outstanding.values())

    def statistics(self) -> dict[str, Any]:
        return {
            "path": str(self.path),
            "accepted": self.accepted,
            "answered": self.answered,
            "lag": self.lag,
            "recovered": len(self.recovered),
            "torn_dropped": self.torn_dropped,
        }

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:  # pragma: no cover - defensive
                pass
            self._handle = None
