"""Wire protocol of the verification daemon: newline-delimited JSON over TCP.

Every message — request and response alike — is a single JSON object on one
``\\n``-terminated line, UTF-8 encoded.  A connection carries any number of
requests; responses may interleave (the daemon answers each request as soon
as its work finishes, not in arrival order), so every request carries a
client-chosen ``id`` that the matching response echoes back.

Requests
--------

::

    {"op": "verify", "id": 1, "source": "<program text>",
     "name": "forward",                 # optional display name
     "options": {"refiner": "interpolation", ...},   # optional VerifierOptions dict
     "client_id": "ci-shard-3",         # optional; quota accounting key
     "include_precision": true}         # optional; ship the final predicate bank
    {"op": "stats",    "id": 2}
    {"op": "cache",    "id": 3}
    {"op": "health",   "id": 4}
    {"op": "shutdown", "id": 5}         # begin graceful drain, then exit

Responses
---------

Success::

    {"id": 1, "ok": true, "op": "verify", "coalesced": false,
     "result": { ...schema-v2 Result JSON... }}
    {"id": 2, "ok": true, "op": "stats", "stats": {...}}

Protocol-level failure (the request never reached the engine)::

    {"id": 1, "ok": false,
     "error": {"code": "overloaded", "status": 429, "message": "..."}}

Engine-level failures are *not* protocol errors: a request that parsed but
whose engine run crashed, timed out, or exhausted its budget still gets
``ok: true`` with a structured schema-v2 result doc (``verdict`` of
``unknown``/``error`` plus ``failure``/``failures`` records) — the PR 6
total contract extends over the wire.

Error codes
-----------

===================  ======  ===============================================
code                 status  meaning
===================  ======  ===============================================
``bad-request``      400     malformed JSON, missing/ill-typed fields, or a
                             request line longer than :data:`MAX_LINE_BYTES`
``unsupported-op``   400     ``op`` is not one of :data:`OPS`
``overloaded``       429     admission control rejected the request: the
                             daemon already holds ``workers + max_queue``
                             uncoalesced verify jobs
``quota-exceeded``   429     the client's token bucket is empty; the error
                             body carries ``retry_after`` (seconds until the
                             next token)
``circuit-open``     503     the ``(fingerprint, options)`` circuit breaker
                             is open after repeated worker crashes; the
                             error body carries ``retry_after`` (seconds
                             until a half-open probe is allowed)
``shutting-down``    503     the daemon is draining and accepts no new work
``internal``         500     an unexpected server-side error (bug)
===================  ======  ===============================================
"""

from __future__ import annotations

import json
from typing import Any, Mapping, Optional, Union

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "OPS",
    "ERROR_STATUS",
    "ProtocolError",
    "encode",
    "decode",
    "parse_request",
    "result_response",
    "ok_response",
    "error_response",
    "transport_failure_doc",
]

#: Bumped on incompatible wire changes; served by the ``health`` op.
PROTOCOL_VERSION = 1

#: Upper bound on one request/response line (8 MiB leaves room for large
#: program sources and full precision dumps while bounding a hostile client).
MAX_LINE_BYTES = 8 * 1024 * 1024

#: Every operation a request may name.
OPS = ("verify", "stats", "cache", "health", "shutdown")

#: HTTP-flavoured status for each protocol error code (the wire is not HTTP,
#: but the numbers make rejection semantics instantly recognisable).
ERROR_STATUS = {
    "bad-request": 400,
    "unsupported-op": 400,
    "overloaded": 429,
    "quota-exceeded": 429,
    "circuit-open": 503,
    "shutting-down": 503,
    "internal": 500,
}


class ProtocolError(ValueError):
    """A request that violates the wire protocol (never reaches the engine)."""

    def __init__(self, code: str, message: str, request_id: Any = None):
        if code not in ERROR_STATUS:
            raise AssertionError(f"unknown protocol error code {code!r}")
        super().__init__(message)
        self.code = code
        self.request_id = request_id


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def encode(doc: Mapping[str, Any]) -> bytes:
    """One message as a ``\\n``-terminated UTF-8 JSON line."""
    return json.dumps(doc, separators=(",", ":"), sort_keys=False).encode() + b"\n"


def decode(line: Union[bytes, str]) -> dict[str, Any]:
    """Parse one wire line into a JSON object.

    Raises :class:`ProtocolError` (code ``bad-request``) on anything that is
    not a single JSON object.
    """
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError(
                "bad-request",
                f"request line exceeds {MAX_LINE_BYTES} bytes",
            )
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as error:
            raise ProtocolError("bad-request", f"request is not UTF-8: {error}")
    try:
        doc = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError("bad-request", f"request is not valid JSON: {error}")
    if not isinstance(doc, dict):
        raise ProtocolError(
            "bad-request", f"request must be a JSON object, got {type(doc).__name__}"
        )
    return doc


# ----------------------------------------------------------------------
# Request validation
# ----------------------------------------------------------------------
def parse_request(line: Union[bytes, str, Mapping[str, Any]]) -> dict[str, Any]:
    """Decode and validate one request line.

    Returns the request dict with ``op`` guaranteed valid and ``verify``
    requests guaranteed to carry a non-empty ``source`` string and (when
    present) a dict ``options``.  Raises :class:`ProtocolError` carrying the
    request ``id`` when it could be recovered, so the error response can
    still be matched by the client.
    """
    doc = dict(line) if isinstance(line, Mapping) else decode(line)
    request_id = doc.get("id")
    if request_id is not None and not isinstance(request_id, (int, str)):
        raise ProtocolError("bad-request", "'id' must be an integer or string")
    op = doc.get("op")
    if not isinstance(op, str):
        raise ProtocolError("bad-request", "request needs a string 'op'", request_id)
    if op not in OPS:
        raise ProtocolError(
            "unsupported-op", f"unknown op {op!r}; expected one of {OPS}", request_id
        )
    if op == "verify":
        source = doc.get("source")
        if not isinstance(source, str) or not source.strip():
            raise ProtocolError(
                "bad-request", "verify needs a non-empty string 'source'", request_id
            )
        name = doc.get("name")
        if name is not None and not isinstance(name, str):
            raise ProtocolError("bad-request", "'name' must be a string", request_id)
        options = doc.get("options")
        if options is not None and not isinstance(options, dict):
            raise ProtocolError(
                "bad-request", "'options' must be a VerifierOptions dict", request_id
            )
        client_id = doc.get("client_id")
        if client_id is not None and not isinstance(client_id, str):
            raise ProtocolError(
                "bad-request", "'client_id' must be a string", request_id
            )
    return doc


# ----------------------------------------------------------------------
# Response builders
# ----------------------------------------------------------------------
def result_response(
    request_id: Any,
    result: Mapping[str, Any],
    coalesced: bool = False,
) -> dict[str, Any]:
    """A successful ``verify`` response wrapping a schema-v2 result doc."""
    return {
        "id": request_id,
        "ok": True,
        "op": "verify",
        "coalesced": bool(coalesced),
        "result": dict(result),
    }


def ok_response(request_id: Any, op: str, **body: Any) -> dict[str, Any]:
    """A successful non-``verify`` response (``stats``/``cache``/...)."""
    return {"id": request_id, "ok": True, "op": op, **body}


def error_response(
    request_id: Any,
    code: str,
    message: str,
    retry_after: Optional[float] = None,
) -> dict[str, Any]:
    """A protocol-level rejection (the request never reached the engine).

    ``retry_after`` (seconds) rides inside the error body for throttling
    rejections (``quota-exceeded`` / ``circuit-open``) so clients can back
    off precisely.
    """
    error: dict[str, Any] = {
        "code": code,
        "status": ERROR_STATUS.get(code, 500),
        "message": message,
    }
    if retry_after is not None:
        error["retry_after"] = round(float(retry_after), 3)
    return {"id": request_id, "ok": False, "error": error}


def transport_failure_doc(
    name: Optional[str],
    kind: str,
    message: str,
    error: Optional[Mapping[str, Any]] = None,
) -> dict[str, Any]:
    """A schema-v2 result doc for a request that died in transit.

    The client library returns these instead of raising, extending the
    supervisor's total contract (every task yields exactly one structured
    doc) across the network: a dropped connection, a timeout, or a
    protocol-level rejection all land here.
    """
    record = {"kind": kind, "message": message, "attempt": 0}
    doc: dict[str, Any] = {
        "schema_version": 2,
        "name": name or "request",
        "verdict": "unknown",
        "reason": f"service failure: {kind}: {message}",
        "iterations": 0,
        "refinements": 0,
        "predicates": 0,
        "seconds": 0.0,
        "post_decisions": 0,
        "attempts": 1,
        "failure": record,
        "failures": [record],
    }
    if error is not None:
        doc["error"] = dict(error)
    return doc
