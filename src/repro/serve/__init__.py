"""Verification-as-a-service: a long-lived daemon over the engine stack.

The pieces (see ``serve/README.md`` for the protocol and lifecycle):

* :mod:`repro.serve.protocol` — newline-delimited JSON over TCP; requests,
  responses, error codes, and the structured transport-failure doc.
* :mod:`repro.serve.coalesce` — request coalescing by
  ``(program_fingerprint, options)`` and bounded 429-style admission.
* :mod:`repro.serve.server` — :class:`VerificationService`: asyncio front,
  supervised worker threads, shared warm-start
  :class:`~repro.core.api.PrecisionStore`, graceful drain.
* :mod:`repro.serve.client` — :class:`ServiceClient`: a pipelining client
  whose verifies never raise (failures come back as schema-v2 docs).

CLI: ``python -m repro serve`` runs the daemon, ``python -m repro submit``
sends work to it.
"""

from .client import DEFAULT_PORT, ServiceClient, ServiceError, wait_until_ready
from .protocol import MAX_LINE_BYTES, OPS, PROTOCOL_VERSION, ProtocolError
from .server import ServiceConfig, VerificationService

__all__ = [
    "DEFAULT_PORT",
    "MAX_LINE_BYTES",
    "OPS",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "VerificationService",
    "wait_until_ready",
]
