"""Verification-as-a-service: a long-lived daemon over the engine stack.

The pieces (see ``serve/README.md`` for the protocol and lifecycle):

* :mod:`repro.serve.protocol` — newline-delimited JSON over TCP; requests,
  responses, error codes, and the structured transport-failure doc.
* :mod:`repro.serve.coalesce` — request coalescing by
  ``(program_fingerprint, options)`` and bounded 429-style admission.
* :mod:`repro.serve.journal` — the durable request journal: a framed,
  fsync'd write-ahead log of accepted work, replayed on restart.
* :mod:`repro.serve.quota` — per-client token-bucket quotas and the
  ``(fingerprint, options)`` circuit breaker.
* :mod:`repro.serve.server` — :class:`VerificationService`: asyncio front,
  supervised worker threads or crash-isolated worker *processes*
  (``worker_backend="process"``), shared warm-start
  :class:`~repro.core.api.PrecisionStore`, graceful drain.
* :mod:`repro.serve.client` — :class:`ServiceClient`: a pipelining client
  whose verifies never raise (failures come back as schema-v2 docs) and
  which can reconnect-and-resubmit across daemon restarts.

CLI: ``python -m repro serve`` runs the daemon, ``python -m repro submit``
sends work to it.
"""

from .client import DEFAULT_PORT, ServiceClient, ServiceError, wait_until_ready
from .journal import RequestJournal
from .protocol import MAX_LINE_BYTES, OPS, PROTOCOL_VERSION, ProtocolError
from .quota import CircuitBreaker, ClientQuota, TokenBucket
from .server import WORKER_BACKENDS, ServiceConfig, VerificationService

__all__ = [
    "DEFAULT_PORT",
    "MAX_LINE_BYTES",
    "OPS",
    "PROTOCOL_VERSION",
    "CircuitBreaker",
    "ClientQuota",
    "ProtocolError",
    "RequestJournal",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "TokenBucket",
    "VerificationService",
    "WORKER_BACKENDS",
    "wait_until_ready",
]
