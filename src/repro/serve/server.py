"""The verification daemon: an asyncio front over a supervised worker pool.

Architecture
------------

::

    TCP clients ──> asyncio loop (one thread) ──> ThreadPoolExecutor
       │              │  parse / admit / coalesce     │  one engine run per
       │              │  (Coalescer, AdmissionControl │  request, supervised
       │              │   — loop-confined, lock-free) │  (fresh VcChecker)
       └── responses <─┘ ── futures resolve ──────────┘
                              │
                       shared Session / PrecisionStore
                       (warm-start seeds out, precisions banked back)

The front accepts newline-delimited JSON (see :mod:`repro.serve.protocol`);
each request line becomes its own asyncio task, so slow verifies never block
``stats``/``health`` probes — not even on the same connection.

Every verify runs through a **single-task sequential**
:class:`~repro.core.supervision.Supervisor` inside a worker thread: the
PR 6 machinery (per-task timeout, retry with backoff, structured failure
docs) applies per request, and the ``task`` fault site fires inside the
request — an injected worker crash mid-request becomes a retry or a
structured ``failure`` doc, never a dropped connection.

With ``worker_backend="process"`` the same supervised run happens in an
**isolated worker process** (``Supervisor(force_pool=True)`` on a
``forkserver``/``spawn`` context — never ``fork``: this parent is
multi-threaded): a hard worker death — ``kill -9``, OOM, a segfault —
breaks only that request's private single-process pool; the supervisor
retries it on a fresh worker or settles a structured ``failure`` doc, and
the daemon keeps serving every other connection.  Warmth still flows
between worker processes through the shared disk ``PrecisionStore``.

Between the transport and the pool sit three loop-confined robustness
layers: the **durable request journal** (:mod:`repro.serve.journal` — an
admitted request is WAL-logged *before* execution and marked answered
after its response reaches the transport, so a daemon crash cannot
silently forget accepted work; ``--recover`` re-executes the backlog on
restart), **per-client token-bucket quotas** and the **``(fingerprint,
options)`` circuit breaker** (:mod:`repro.serve.quota` — repeated worker
crashes on one submission short-circuit to a structured 503 instead of
burning a pool rebuild per retry).

Each request builds a **fresh engine and VcChecker** (via the same
module-level ``_run_batch_task`` the batch pool uses): prepared solver
contexts are not safe to share across threads.  What *is* shared — and what
makes the daemon more than a loop around the CLI — is the session's
:class:`~repro.core.api.PrecisionStore`: decided precisions are banked
under the program fingerprint and seed later requests, so a repeat
fingerprint does strictly fewer abstract posts (cross-request
warm-starting).  Dict/set merges under the GIL plus one banking lock keep
the store coherent across worker threads.

Budget isolation: every request gets its own
:class:`~repro.core.engine.Budget` from its own options; the service-level
``request_timeout`` clamps each request's ``max_seconds`` and arms the
supervisor's ``task_timeout``, so one pathological program burns only its
own budget while concurrent small requests proceed on the other workers.
"""

from __future__ import annotations

import asyncio
import os
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional, Union

from ..core import faults
from ..core.api import Session, VerifierOptions
from ..core.engine import _run_batch_task, error_doc
from ..core.supervision import RetryPolicy, Supervisor
from . import protocol
from .coalesce import AdmissionControl, Coalescer, options_key
from .journal import RequestJournal
from .quota import CircuitBreaker, ClientQuota

__all__ = ["ServiceConfig", "VerificationService", "WORKER_BACKENDS"]

#: Where engine runs execute: ``thread`` (shared address space, GIL-bound)
#: or ``process`` (one isolated worker process per request, crash-proof).
WORKER_BACKENDS = ("thread", "process")


@dataclass
class ServiceConfig:
    """Daemon configuration.

    ``options`` are the server-side defaults; a request's ``options`` dict
    (full :meth:`VerifierOptions.to_dict` form or any subset of its keys)
    replaces them wholesale for that request.  ``request_timeout`` is the
    per-request isolation wall: it clamps the request's ``max_seconds``
    budget and arms the supervisor's ``task_timeout``.
    """

    host: str = "127.0.0.1"
    port: int = 0  # 0 = pick a free port; read it from service.port
    workers: int = 2
    max_queue: int = 16
    request_timeout: Optional[float] = None
    store_path: Optional[Union[str, Path]] = None
    options: VerifierOptions = field(default_factory=VerifierOptions)
    #: ``thread`` (default) or ``process`` — see :data:`WORKER_BACKENDS`.
    worker_backend: str = "thread"
    #: Durable request journal (WAL) path; ``None`` disables journaling.
    journal_path: Optional[Union[str, Path]] = None
    #: Re-execute journal-recovered unanswered requests on startup.
    recover: bool = False
    #: Per-client token-bucket rate (tokens/second); ``None`` disables quotas.
    quota_rate: Optional[float] = None
    #: Per-client bucket capacity (only meaningful with ``quota_rate``).
    quota_burst: int = 20
    #: Consecutive crashes on one (fingerprint, options) key before the
    #: circuit trips; ``0`` disables the breaker.
    breaker_threshold: int = 3
    #: Seconds an open circuit rejects before allowing a half-open probe.
    breaker_cooldown: float = 30.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {self.max_queue}")
        if self.request_timeout is not None and self.request_timeout <= 0:
            raise ValueError(
                f"request_timeout must be > 0 or None, got {self.request_timeout}"
            )
        if self.worker_backend not in WORKER_BACKENDS:
            raise ValueError(
                f"worker_backend must be one of {WORKER_BACKENDS}, "
                f"got {self.worker_backend!r}"
            )
        if self.quota_rate is not None and self.quota_rate <= 0:
            raise ValueError(
                f"quota_rate must be > 0 or None, got {self.quota_rate}"
            )
        if self.quota_burst < 1:
            raise ValueError(f"quota_burst must be >= 1, got {self.quota_burst}")
        if self.breaker_threshold < 0:
            raise ValueError(
                f"breaker_threshold must be >= 0, got {self.breaker_threshold}"
            )
        if self.breaker_cooldown < 0:
            raise ValueError(
                f"breaker_cooldown must be >= 0, got {self.breaker_cooldown}"
            )
        if self.recover and self.journal_path is None:
            raise ValueError("recover=True needs a journal_path")


class VerificationService:
    """A long-lived verification service (see module docstring).

    Two ways to run it:

    * :meth:`serve_forever` — the CLI path: owns the calling thread, installs
      SIGTERM/SIGINT handlers that trigger a graceful drain, returns once
      drained.
    * :meth:`start` / :meth:`stop` — the embedded path (tests, the fuzz
      oracle, benchmarks): the loop runs on a daemon thread; ``stop()``
      drains and joins.

    Graceful drain: stop accepting connections, reject new verifies with a
    503-style ``shutting-down`` error, finish every in-flight engine run and
    write its response, flush the precision store to disk, then exit.
    """

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        self.session = Session(
            self.config.options, store_path=self.config.store_path
        )
        self.coalescer = Coalescer()
        self.admission = AdmissionControl(self.config.workers, self.config.max_queue)
        #: The durable request WAL (opening it replays + compacts the file).
        self.journal: Optional[RequestJournal] = (
            RequestJournal(self.config.journal_path)
            if self.config.journal_path is not None
            else None
        )
        self.quota: Optional[ClientQuota] = (
            ClientQuota(self.config.quota_rate, self.config.quota_burst)
            if self.config.quota_rate is not None
            else None
        )
        self.breaker: Optional[CircuitBreaker] = (
            CircuitBreaker(
                self.config.breaker_threshold, self.config.breaker_cooldown
            )
            if self.config.breaker_threshold > 0
            else None
        )
        self._mp_context = (
            self._pick_mp_context()
            if self.config.worker_backend == "process"
            else None
        )
        self._bank_lock = threading.Lock()
        # Counters (loop thread or under _bank_lock; reads are GIL-atomic).
        self.requests_total = 0
        self.verify_requests = 0
        self.engine_runs = 0
        self.warm_hits = 0
        self.posts_executed = 0
        self.connections_total = 0
        self.connections_dropped = 0
        self.recovery_runs = 0
        self.supervision_totals = {
            "retries": 0,
            "crashes": 0,
            "timeouts": 0,
            "worker_errors": 0,
            "tasks_failed": 0,
            "tasks_recovered": 0,
            "pool_rebuilds": 0,
            "degraded_to_sequential": 0,
        }
        # Runtime state.
        self.port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._thread: Optional[threading.Thread] = None
        self._draining = False
        self._drained: Optional[asyncio.Event] = None
        self._jobs: set = set()  # in-flight engine futures
        self._request_tasks: set = set()  # in-flight request-handler tasks
        self._connections: set = set()  # open StreamWriters
        self._started = threading.Event()
        self._stopped = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._started_at: Optional[float] = None

    @staticmethod
    def _pick_mp_context() -> Any:
        """The start method for process-backend workers.

        The daemon is multi-threaded (loop + executor threads), so ``fork``
        is off the table — a child forked while another thread holds an
        intern-table or banking lock inherits the lock in a locked state
        with nobody to release it.  ``forkserver`` gives clean single-thread
        forks with module preloading; ``spawn`` is the portable fallback.
        """
        import multiprocessing

        try:
            context = multiprocessing.get_context("forkserver")
            # Pay the `import repro` cost once in the fork server, not once
            # per pool worker (the pools are per-request and short-lived).
            context.set_forkserver_preload(["repro.core.engine"])
            return context
        except ValueError:  # pragma: no cover - platform without forkserver
            return multiprocessing.get_context("spawn")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def _main(
        self, on_ready: Optional[Callable[["VerificationService"], None]] = None
    ) -> None:
        self._loop = asyncio.get_running_loop()
        self._drained = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="repro-serve"
        )
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=protocol.MAX_LINE_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()
        if threading.current_thread() is threading.main_thread():
            # CLI path: SIGTERM/SIGINT begin a graceful drain.  Signal
            # handlers only attach from the main thread; the embedded path
            # drains through stop() instead.
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    self._loop.add_signal_handler(signum, self._begin_drain)
                except (NotImplementedError, ValueError, RuntimeError):
                    break
        if on_ready is not None:
            on_ready(self)
        self._started.set()
        if (
            self.config.recover
            and self.journal is not None
            and self.journal.recovered
        ):
            task = asyncio.ensure_future(self._recover_outstanding())
            self._request_tasks.add(task)
            task.add_done_callback(self._request_tasks.discard)
        try:
            await self._drained.wait()
        finally:
            if self._executor is not None:
                self._executor.shutdown(wait=True)

    def _begin_drain(self) -> None:
        """Schedule the drain coroutine (idempotent; loop thread only)."""
        if not self._draining:
            asyncio.ensure_future(self._drain())

    async def _drain(self) -> None:
        """Stop accepting, finish in-flight work, flush the store, exit."""
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Finish in-flight engine runs *and* the request tasks writing their
        # responses (a job finishing is not enough — its waiters still have
        # to put the result docs on the wire).
        while self._jobs or self._request_tasks:
            pending = list(self._jobs) + list(self._request_tasks)
            await asyncio.wait(pending)
        if self.session.store.path is not None:
            await self._loop.run_in_executor(None, self.session.store.save)
        if self.journal is not None:
            self.journal.close()
        for writer in list(self._connections):
            writer.close()
        self._drained.set()

    def serve_forever(
        self, on_ready: Optional[Callable[["VerificationService"], None]] = None
    ) -> None:
        """Run the daemon on the calling thread until drained (CLI path)."""
        try:
            asyncio.run(self._main(on_ready=on_ready))
        finally:
            self._stopped.set()

    def start(self, timeout: float = 15.0) -> "VerificationService":
        """Run the daemon on a background thread; returns once listening."""
        if self._thread is not None:
            raise RuntimeError("service already started")

        def _runner() -> None:
            try:
                asyncio.run(self._main())
            except BaseException as error:  # pragma: no cover - startup bugs
                self._startup_error = error
            finally:
                self._started.set()
                self._stopped.set()

        self._thread = threading.Thread(
            target=_runner, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError(f"service did not start within {timeout}s")
        if self._startup_error is not None:
            raise RuntimeError("service failed to start") from self._startup_error
        return self

    def stop(self, timeout: float = 120.0) -> None:
        """Drain gracefully and wait for the loop thread to exit."""
        loop = self._loop
        if loop is not None and not loop.is_closed() and not self._stopped.is_set():
            try:
                loop.call_soon_threadsafe(self._begin_drain)
            except RuntimeError:
                pass  # loop already closed between the checks
        self._stopped.wait(timeout)
        if self._thread is not None:
            self._thread.join(timeout)

    @property
    def draining(self) -> bool:
        return self._draining

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        self.connections_total += 1
        write_lock = asyncio.Lock()
        pending: set = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # Line exceeded the stream limit: answer and hang up —
                    # the stream cannot be re-synchronised mid-line.
                    await self._send(
                        writer,
                        write_lock,
                        protocol.error_response(
                            None,
                            "bad-request",
                            f"request line exceeds {protocol.MAX_LINE_BYTES} bytes",
                        ),
                    )
                    break
                except (ConnectionError, OSError):
                    break
                if not line:
                    break  # client EOF
                if not line.strip():
                    continue
                task = asyncio.ensure_future(
                    self._handle_line(line, writer, write_lock)
                )
                pending.add(task)
                self._request_tasks.add(task)
                task.add_done_callback(pending.discard)
                task.add_done_callback(self._request_tasks.discard)
        finally:
            if pending:
                # The client stopped sending but responses may still be in
                # flight; finish them before closing (harmless if the peer
                # is already gone — the writes just fail quietly).
                await asyncio.wait(pending)
            self._connections.discard(writer)
            writer.close()

    async def _send(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        doc: dict[str, Any],
    ) -> None:
        data = protocol.encode(doc)
        async with write_lock:
            try:
                writer.write(data)
                await writer.drain()
            except (ConnectionError, RuntimeError, OSError):
                # The client went away; server-side effects (banked
                # precision, counters) already happened and stand.
                pass

    # ------------------------------------------------------------------
    # Request dispatch
    # ------------------------------------------------------------------
    async def _handle_line(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        self.requests_total += 1
        try:
            request = protocol.parse_request(line)
        except protocol.ProtocolError as error:
            await self._send(
                writer,
                write_lock,
                protocol.error_response(error.request_id, error.code, str(error)),
            )
            return
        request_id = request.get("id")
        op = request["op"]
        try:
            if op == "verify":
                await self._handle_verify(request, writer, write_lock)
            elif op == "stats":
                await self._send(
                    writer,
                    write_lock,
                    protocol.ok_response(request_id, "stats", stats=self.statistics()),
                )
            elif op == "cache":
                await self._send(
                    writer,
                    write_lock,
                    protocol.ok_response(request_id, "cache", cache=self._cache_doc()),
                )
            elif op == "health":
                await self._send(
                    writer,
                    write_lock,
                    protocol.ok_response(request_id, "health", health=self._health_doc()),
                )
            elif op == "shutdown":
                await self._send(
                    writer,
                    write_lock,
                    protocol.ok_response(request_id, "shutdown", draining=True),
                )
                self._begin_drain()
        except Exception as error:  # pragma: no cover - bug backstop
            await self._send(
                writer,
                write_lock,
                protocol.error_response(request_id, "internal", repr(error)),
            )

    # ------------------------------------------------------------------
    # Verify
    # ------------------------------------------------------------------
    async def _handle_verify(
        self,
        request: dict[str, Any],
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        self.verify_requests += 1
        request_id = request.get("id")
        if self._draining:
            await self._send(
                writer,
                write_lock,
                protocol.error_response(
                    request_id, "shutting-down", "daemon is draining; resubmit elsewhere"
                ),
            )
            return
        client_id = request.get("client_id")
        if self.quota is not None:
            retry_after = self.quota.try_admit(client_id)
            if retry_after is not None:
                await self._send(
                    writer,
                    write_lock,
                    protocol.error_response(
                        request_id,
                        "quota-exceeded",
                        f"client {client_id or 'anonymous'!s} is over its "
                        f"{self.quota.rate}/s rate; retry after "
                        f"{retry_after:.3f}s",
                        retry_after=retry_after,
                    ),
                )
                return
        try:
            opts = (
                VerifierOptions.from_dict(request["options"])
                if request.get("options")
                else self.config.options
            )
        except (ValueError, TypeError, KeyError) as error:
            await self._send(
                writer,
                write_lock,
                protocol.error_response(request_id, "bad-request", f"options: {error}"),
            )
            return
        name = request.get("name")
        try:
            task = self.session.task(request["source"], name=name, options=opts)
            program = task.resolved()
            fingerprint = task.fingerprint
            name = task.name or program.name
        except Exception as error:
            # A source that does not parse is an engine-level failure, not a
            # protocol error: same isolation the batch path gives it.
            await self._send_result(
                writer, write_lock, request_id, error_doc(name or "request", error),
                coalesced=False, name=name,
            )
            return
        key = (fingerprint, options_key(opts))
        if self.breaker is not None:
            retry_after = self.breaker.check(key)
            if retry_after is not None:
                await self._send(
                    writer,
                    write_lock,
                    protocol.error_response(
                        request_id,
                        "circuit-open",
                        f"submissions for fingerprint {fingerprint[:12]}… keep "
                        f"crashing workers; circuit open for another "
                        f"{retry_after:.3f}s",
                        retry_after=retry_after,
                    ),
                )
                return
        job, created = self.coalescer.attach(key)
        if created:
            if not self.admission.try_admit():
                self.coalescer.abandon(key)
                await self._send(
                    writer,
                    write_lock,
                    protocol.error_response(
                        request_id,
                        "overloaded",
                        f"{self.admission.pending} jobs pending "
                        f"(capacity {self.admission.capacity}); retry later",
                    ),
                )
                return
            # Accepted: journal it *before* execution starts (WAL), so a
            # daemon crash from here on cannot silently forget the request.
            seq = self._journal_accept(
                name, task.source, request.get("options"), fingerprint, client_id
            )
            # No await between attach() and setting job.future: attachers on
            # this single-threaded loop always observe a populated future.
            future = self._loop.run_in_executor(
                self._executor, self._execute, task.source, name, fingerprint, opts
            )
            job.future = future
            self._jobs.add(future)
            future.add_done_callback(
                lambda fut, key=key, seq=seq: self._job_done(fut, key, seq)
            )
        try:
            doc, rendered_precision = await job.future
        except Exception as error:  # pragma: no cover - bug backstop
            await self._send(
                writer,
                write_lock,
                protocol.error_response(request_id, "internal", repr(error)),
            )
            return
        doc = dict(doc)
        if request.get("include_precision"):
            doc["precision"] = rendered_precision
        await self._send_result(
            writer, write_lock, request_id, doc, coalesced=not created, name=name
        )

    def _journal_accept(
        self,
        name: str,
        source: str,
        options: Optional[dict[str, Any]],
        fingerprint: str,
        client_id: Optional[str],
    ) -> Optional[int]:
        """WAL-log one admitted request (loop thread; fsync is microseconds).

        Journal trouble (disk full, torn write) must never take down
        serving: the request still runs, it just loses durability.
        """
        if self.journal is None:
            return None
        try:
            return self.journal.accept(
                name, source, options, fingerprint, client_id=client_id
            )
        except Exception:  # pragma: no cover - disk-level defensive
            return None

    def _job_done(
        self, future: Any, key: tuple[str, str], seq: Optional[int] = None
    ) -> None:
        """Loop-thread callback when an engine run resolves.

        Beyond releasing coalescing/admission state, this is where the
        run's outcome feeds the circuit breaker (a *crash-kind* failure —
        hard death, timeout, broken pool — is a strike; an engine-level
        ``error`` verdict is a perfectly good answer and closes the
        circuit) and where the journal marks the request answered.
        """
        self._jobs.discard(future)
        self.coalescer.finish(key)
        self.admission.release()
        verdict: Optional[str] = None
        crashed = False
        try:
            doc, _ = future.result()
            verdict = doc.get("verdict")
            failure = doc.get("failure") or {}
            crashed = verdict == "unknown" and failure.get("kind") in (
                "crash", "timeout", "pool-broken", "pool-lost"
            )
        except Exception:  # pragma: no cover - bug backstop
            crashed = True
        if self.breaker is not None:
            if crashed:
                self.breaker.record_failure(key)
            else:
                self.breaker.record_success(key)
        if self.journal is not None and seq is not None:
            try:
                self.journal.answer(seq, verdict)
            except Exception:  # pragma: no cover - disk-level defensive
                pass

    async def _recover_outstanding(self) -> None:
        """Re-execute journal-recovered accepted-but-unanswered requests.

        Runs on the loop after startup (``--recover``).  Each recovered
        record goes through the normal coalesce/admit path, so a client
        resubmitting the same work coalesces onto the recovery run instead
        of doubling it; when admission is saturated the backlog politely
        waits for a slot rather than stampeding the fresh daemon.
        """
        for record in list(self.journal.recovered):
            if self._draining:
                return
            seq = record.get("seq")
            try:
                raw_options = record.get("options")
                opts = (
                    VerifierOptions.from_dict(raw_options)
                    if raw_options
                    else self.config.options
                )
                task = self.session.task(
                    record["source"], name=record.get("name"), options=opts
                )
                fingerprint = task.fingerprint
                name = task.name or task.resolved().name
            except Exception:
                # Unparseable record (or source): answer it 'error' so the
                # journal does not carry it forever.
                if seq is not None:
                    self.journal.answer(seq, "error")
                continue
            key = (fingerprint, options_key(opts))
            while True:
                job, created = self.coalescer.attach(key)
                if not created:
                    # An identical run is already in flight (e.g. the client
                    # already resubmitted): ride it, just mark this record.
                    job.future.add_done_callback(
                        lambda fut, seq=seq: self._recovery_done(fut, seq)
                    )
                    break
                if self.admission.try_admit():
                    self.recovery_runs += 1
                    future = self._loop.run_in_executor(
                        self._executor,
                        self._execute,
                        task.source,
                        name,
                        fingerprint,
                        opts,
                    )
                    job.future = future
                    self._jobs.add(future)
                    future.add_done_callback(
                        lambda fut, key=key, seq=seq: self._job_done(fut, key, seq)
                    )
                    break
                self.coalescer.abandon(key)
                await asyncio.sleep(0.05)
                if self._draining:
                    return

    def _recovery_done(self, future: Any, seq: Optional[int]) -> None:
        """Mark a recovered record answered off someone else's run."""
        if self.journal is None or seq is None:
            return
        try:
            doc, _ = future.result()
            verdict = doc.get("verdict")
        except Exception:  # pragma: no cover - bug backstop
            verdict = None
        try:
            self.journal.answer(seq, verdict)
        except Exception:  # pragma: no cover - disk-level defensive
            pass

    async def _send_result(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        request_id: Any,
        doc: dict[str, Any],
        coalesced: bool,
        name: Optional[str],
    ) -> None:
        spec = faults.fire("serve-response", (name or "*", str(request_id)))
        if spec is not None and spec.kind == "drop-connection":
            # Injected network drop mid-response: the bytes never go out.
            # Server-side state (banked precision, counters) stands; the
            # client library turns the EOF into a structured failure doc.
            self.connections_dropped += 1
            self._connections.discard(writer)
            writer.close()
            return
        await self._send(
            writer,
            write_lock,
            protocol.result_response(request_id, doc, coalesced=coalesced),
        )

    # ------------------------------------------------------------------
    # The engine run (worker thread)
    # ------------------------------------------------------------------
    def _execute(
        self,
        source: str,
        name: str,
        fingerprint: str,
        opts: VerifierOptions,
    ) -> tuple[dict[str, Any], dict[str, list[str]]]:
        """One supervised engine run; returns (result doc, rendered bank).

        Runs on an executor thread.  Must never raise: every failure mode is
        the supervisor's to structure, and anything past it is a bug caught
        by the outer ``except`` below.
        """
        try:
            budget = dict(vars(opts.budget()))
            timeout = self.config.request_timeout
            if timeout is not None:
                budget["max_seconds"] = (
                    timeout
                    if budget.get("max_seconds") is None
                    else min(budget["max_seconds"], timeout)
                )
            seed = (
                self.session.store.payload(fingerprint) if opts.warm_start else None
            )
            payload = {
                "name": name,
                "source": source,
                "refiner": opts.refiner,
                "strategy": opts.strategy,
                "budget": budget,
                "incremental": opts.incremental,
                "max_predicates_per_location": opts.max_predicates_per_location,
                "max_cache_entries": opts.max_cache_entries,
                "portfolio_refiners": list(opts.portfolio_refiners),
                "slice_refinements": opts.slice_refinements,
                "slice_seconds": opts.slice_seconds,
                "monitor_window": opts.monitor_window,
                "jobs": opts.jobs,
                "seed": seed,
                "ship_precision": True,
            }
            # thread backend: sequential, this executor thread is the worker.
            # process backend: force_pool gives the single task its own
            # worker *process* — a hard death breaks only this request's
            # private pool, never the daemon.
            supervisor = Supervisor(
                worker=_run_batch_task,
                jobs=1,
                task_timeout=timeout,
                retry=RetryPolicy(
                    max_retries=opts.task_retries, degrade=opts.degrade_on_retry
                ),
                force_pool=self.config.worker_backend == "process",
                mp_context=self._mp_context,
            )
            doc = supervisor.run_batch([payload], keys=[(fingerprint, name)])[0]
            precision_payload = doc.pop("_precision", None)
            rendered = {
                location: sorted(str(predicate) for predicate in predicates)
                for location, predicates in sorted((precision_payload or {}).items())
            }
            failed = doc.get("verdict") == "error" or doc.get("failure")
            with self._bank_lock:
                self.engine_runs += 1
                self.session.tasks_run += 1
                self.posts_executed += doc.get("post_decisions") or 0
                stats = supervisor.statistics()
                for counter in self.supervision_totals:
                    self.supervision_totals[counter] += stats.get(counter, 0)
                if not failed:
                    if seed:
                        self.warm_hits += 1
                        self.session.warm_starts += 1
                    self.session._bank_decided(
                        fingerprint, doc.get("verdict"), precision_payload
                    )
            if not failed:
                doc.setdefault("engine", {})
                if isinstance(doc["engine"], dict):
                    doc["engine"]["session"] = Session._provenance(
                        fingerprint,
                        bool(seed),
                        sum(len(preds) for preds in (seed or {}).values()),
                    )
            return doc, rendered
        except Exception as error:  # pragma: no cover - bug backstop
            return error_doc(name, error), {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def statistics(self) -> dict[str, Any]:
        """Service + session counters (the ``stats`` endpoint body)."""
        session_stats = self.session.statistics()
        session_stats.pop("checker", None)  # large; the cache op covers caches
        return {
            "service": {
                "draining": self._draining,
                "workers": self.config.workers,
                "worker_backend": self.config.worker_backend,
                "max_queue": self.config.max_queue,
                "request_timeout": self.config.request_timeout,
                "requests_total": self.requests_total,
                "verify_requests": self.verify_requests,
                "engine_runs": self.engine_runs,
                "coalesce_hits": self.coalescer.coalesce_hits,
                "warm_hits": self.warm_hits,
                "rejections": self.admission.rejections,
                "posts_executed": self.posts_executed,
                "pending": self.admission.pending,
                "queue_depth": self.admission.queue_depth,
                "peak_pending": self.admission.peak_pending,
                "in_flight": self.coalescer.in_flight,
                "connections_total": self.connections_total,
                "connections_dropped": self.connections_dropped,
                "recovery_runs": self.recovery_runs,
                "supervision": dict(self.supervision_totals),
                "journal": (
                    self.journal.statistics() if self.journal is not None else None
                ),
                "quota": (
                    self.quota.statistics() if self.quota is not None else None
                ),
                "breaker": (
                    self.breaker.statistics() if self.breaker is not None else None
                ),
            },
            "session": session_stats,
            "store": self._store_doc(),
        }

    def _store_doc(self) -> dict[str, Any]:
        store = self.session.store
        return {
            "programs": len(store),
            "predicates": sum(
                store.total_predicates(fingerprint)
                for fingerprint in store.fingerprints()
            ),
            "path": str(store.path) if store.path is not None else None,
        }

    def _cache_doc(self) -> dict[str, Any]:
        store = self.session.store
        return {
            "store": {
                **self._store_doc(),
                "fingerprints": sorted(store.fingerprints()),
            },
            "checker_caches": self.session.checker.cache_sizes(),
        }

    def _health_doc(self) -> dict[str, Any]:
        from .. import __version__  # late: repro/__init__ imports this package

        uptime = (
            time.monotonic() - self._started_at
            if self._started_at is not None
            else 0.0
        )
        return {
            "status": "draining" if self._draining else "ready",
            "protocol": protocol.PROTOCOL_VERSION,
            "version": __version__,
            "pid": os.getpid(),
            "uptime_seconds": round(uptime, 3),
            "workers": self.config.workers,
            "worker_backend": self.config.worker_backend,
            "queue_depth": self.admission.queue_depth,
            "pending": self.admission.pending,
            "journal_lag": self.journal.lag if self.journal is not None else None,
            "open_circuits": (
                self.breaker.open_circuits if self.breaker is not None else 0
            ),
        }
