"""Client library for the verification daemon.

:class:`ServiceClient` speaks the newline-delimited JSON protocol over a
plain blocking socket.  Its defining property mirrors the supervisor's
total contract, extended across the network: :meth:`verify` and
:meth:`submit_many` **never raise** for a failed request — a dropped
connection, a timeout, a protocol-level rejection (429 ``overloaded``,
503 ``shutting-down``) all come back as structured schema-v2 result docs
(``verdict: unknown`` with a ``failure`` record), so a caller iterating a
suite always gets exactly one doc per submission.

Control-plane calls (:meth:`stats` / :meth:`cache` / :meth:`health` /
:meth:`shutdown`) raise :class:`ServiceError` on transport failure instead:
their callers want a hard signal that the daemon is unreachable, not a
doc-shaped placeholder.

A client holds one connection, lazily opened and transparently reopened
after a transport failure.  :meth:`submit_many` pipelines: all requests go
out before any response is read, which is what makes server-side coalescing
observable from a single client.

Reconnect-and-retry: with ``retries > 0`` a ``connection-lost`` mid-batch
(the daemon restarted, a proxy dropped the socket, an injected
``drop-connection``) is not final — the client backs off (capped
exponential), reconnects, and resubmits only the still-unanswered
requests.  This is safe *because the daemon makes it idempotent*:
an identical resubmission coalesces onto a still-running engine run, and
a finished one warm-starts from the banked precision — verdicts never
flip across retries.  Retried docs carry a ``transport`` trail
(``{"attempts": n, "failures": [...]}``) so callers can see the bumps.
Timeouts are *not* retried (the work may still be running server-side;
resubmitting would double it), and ``retries=0`` (the default) keeps the
original single-shot behaviour.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Any, Mapping, Optional, Sequence, Union

from ..core import faults
from ..core.api import VerifierOptions
from . import protocol

__all__ = ["DEFAULT_PORT", "ServiceClient", "ServiceError", "wait_until_ready"]

#: Default daemon port for `repro serve` / `repro submit`.
DEFAULT_PORT = 8077


class ServiceError(RuntimeError):
    """The daemon is unreachable or answered gibberish (control plane only)."""


class ServiceClient:
    """One connection to a verification daemon (see module docstring)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: float = 600.0,
        connect_timeout: float = 10.0,
        retries: int = 0,
        backoff_base: float = 0.05,
        backoff_factor: float = 2.0,
        backoff_max: float = 2.0,
        client_id: Optional[str] = None,
    ):
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        #: Reconnect-and-resubmit budget for ``connection-lost`` mid-verify.
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.backoff_max = backoff_max
        #: Quota accounting identity sent with every verify request.
        self.client_id = client_id
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._next_id = 1

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    def connect(self) -> "ServiceClient":
        if self._sock is None:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout
            )
            sock.settimeout(self.timeout)
            self._sock = sock
            self._file = sock.makefile("rb")
        return self

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Wire primitives
    # ------------------------------------------------------------------
    def _send_line(self, doc: Mapping[str, Any], fault_keys: Sequence[str]) -> None:
        self.connect()
        data = protocol.encode(doc)
        spec = faults.fire("client-send", tuple(fault_keys))
        if spec is not None and spec.kind == "slow-client" and len(data) > 1:
            # A trickling sender: half the bytes, a pause, then the rest.
            half = len(data) // 2
            self._sock.sendall(data[:half])
            time.sleep(spec.seconds)
            self._sock.sendall(data[half:])
        else:
            self._sock.sendall(data)

    def _read_response(self) -> dict[str, Any]:
        line = self._file.readline(protocol.MAX_LINE_BYTES + 2)
        if not line:
            raise ConnectionError("server closed the connection")
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as error:
            raise ServiceError(f"malformed response from daemon: {error}")
        if not isinstance(doc, dict):
            raise ServiceError(f"malformed response from daemon: {doc!r}")
        return doc

    def _read_matching(self, request_id: int) -> dict[str, Any]:
        # With pipelining the daemon may interleave responses; skip any that
        # are not ours (single-request callers never hit this, and
        # submit_many collects every response by id instead).
        while True:
            response = self._read_response()
            if response.get("id") == request_id:
                return response

    def request(self, doc: Mapping[str, Any]) -> dict[str, Any]:
        """One control-plane round trip; raises :class:`ServiceError` on
        transport failure."""
        doc = dict(doc)
        doc.setdefault("id", self._take_id())
        try:
            self._send_line(doc, (str(doc.get("op")),))
            return self._read_matching(doc["id"])
        except (ConnectionError, socket.timeout, OSError) as error:
            self.close()
            raise ServiceError(f"daemon unreachable: {error}") from error

    def _take_id(self) -> int:
        request_id = self._next_id
        self._next_id += 1
        return request_id

    @staticmethod
    def _options_dict(
        options: Optional[Union[VerifierOptions, Mapping[str, Any]]]
    ) -> Optional[dict[str, Any]]:
        if options is None:
            return None
        if isinstance(options, VerifierOptions):
            return options.to_dict()
        return dict(options)

    # ------------------------------------------------------------------
    # Verification (never raises; every failure is a structured doc)
    # ------------------------------------------------------------------
    def verify(
        self,
        source: str,
        name: Optional[str] = None,
        options: Optional[Union[VerifierOptions, Mapping[str, Any]]] = None,
        include_precision: bool = False,
    ) -> dict[str, Any]:
        """Verify one program; returns a schema-v2 result doc, always.

        The doc carries two transport-level extras: ``coalesced`` (this
        response came from an engine run another request started) and, when
        requested, ``precision`` (the final predicate bank as rendered
        strings by location).
        """
        return self.submit_many(
            [{"source": source, "name": name}],
            options=options,
            include_precision=include_precision,
        )[0]

    def submit_many(
        self,
        tasks: Sequence[Union[str, tuple[str, str], Mapping[str, Any]]],
        options: Optional[Union[VerifierOptions, Mapping[str, Any]]] = None,
        include_precision: bool = False,
    ) -> list[dict[str, Any]]:
        """Pipeline a batch of verifies; one result doc per task, in order.

        Each task is a source string, a ``(name, source)`` pair, or a dict
        with ``source`` / ``name`` / ``options`` keys (per-task options win
        over the batch-level ``options``).  All requests are written before
        any response is read, so identical concurrent work coalesces
        server-side even from one client.
        """
        default_options = self._options_dict(options)
        prepared: list[dict[str, Any]] = []
        for task in tasks:
            if isinstance(task, str):
                task = {"source": task}
            elif isinstance(task, tuple):
                task = {"name": task[0], "source": task[1]}
            else:
                task = dict(task)
            request: dict[str, Any] = {
                "op": "verify",
                "id": self._take_id(),
                "source": task["source"],
            }
            if task.get("name"):
                request["name"] = task["name"]
            task_options = self._options_dict(task.get("options")) or default_options
            if task_options is not None:
                request["options"] = task_options
            if self.client_id is not None:
                request["client_id"] = self.client_id
            if include_precision:
                request["include_precision"] = True
            prepared.append(request)

        docs: dict[int, dict[str, Any]] = {}

        def _fail_outstanding(kind: str, message: str) -> None:
            for request in prepared:
                if request["id"] not in docs:
                    docs[request["id"]] = protocol.transport_failure_doc(
                        request.get("name"), kind, message
                    )

        by_id = {request["id"]: request for request in prepared}
        trail: list[dict[str, Any]] = []
        retried_ids: set[int] = set()
        attempt = 0
        while True:
            attempt += 1
            try:
                for request in prepared:
                    if request["id"] in docs:
                        continue  # answered on an earlier attempt
                    self._send_line(
                        request, (request.get("name") or "*", str(request["id"]))
                    )
                while len(docs) < len(prepared):
                    response = self._read_response()
                    request = by_id.get(response.get("id"))
                    if request is None:
                        continue  # stale response from an earlier abandoned call
                    docs[request["id"]] = self._doc_from_response(request, response)
                break
            except (ConnectionError, socket.timeout, OSError) as error:
                self.close()
                is_timeout = isinstance(error, socket.timeout)
                kind = "timeout" if is_timeout else "connection-lost"
                if is_timeout or attempt > self.retries:
                    _fail_outstanding(kind, str(error) or kind)
                    break
                # Reconnect-and-resubmit the unanswered remainder: safe
                # because coalescing + banked precisions make an identical
                # resubmission idempotent (see module docstring).
                trail.append(
                    {
                        "kind": kind,
                        "message": str(error) or kind,
                        "attempt": attempt - 1,
                    }
                )
                retried_ids.update(
                    request["id"]
                    for request in prepared
                    if request["id"] not in docs
                )
                time.sleep(
                    min(
                        self.backoff_base * self.backoff_factor ** (attempt - 1),
                        self.backoff_max,
                    )
                )
            except ServiceError as error:
                self.close()
                _fail_outstanding("bad-response", str(error))
                break
        if trail:
            for request_id in retried_ids:
                doc = docs.get(request_id)
                if doc is not None:
                    doc["transport"] = {"attempts": attempt, "failures": list(trail)}
        return [docs[request["id"]] for request in prepared]

    @staticmethod
    def _doc_from_response(
        request: Mapping[str, Any], response: Mapping[str, Any]
    ) -> dict[str, Any]:
        if response.get("ok") and isinstance(response.get("result"), dict):
            doc = dict(response["result"])
            doc["coalesced"] = bool(response.get("coalesced"))
            return doc
        error = response.get("error") or {}
        return protocol.transport_failure_doc(
            request.get("name"),
            error.get("code", "bad-response"),
            error.get("message", "daemon rejected the request"),
            error=error or None,
        )

    # ------------------------------------------------------------------
    # Control plane (raises ServiceError when the daemon is unreachable)
    # ------------------------------------------------------------------
    def _control(self, op: str) -> dict[str, Any]:
        response = self.request({"op": op})
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServiceError(
                f"{op} failed: {error.get('code')}: {error.get('message')}"
            )
        return response

    def stats(self) -> dict[str, Any]:
        return self._control("stats")["stats"]

    def cache(self) -> dict[str, Any]:
        return self._control("cache")["cache"]

    def health(self) -> dict[str, Any]:
        return self._control("health")["health"]

    def shutdown(self) -> dict[str, Any]:
        """Ask the daemon to drain gracefully; returns its acknowledgement."""
        response = self._control("shutdown")
        self.close()
        return response


def wait_until_ready(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    timeout: float = 15.0,
    interval: float = 0.05,
) -> dict[str, Any]:
    """Poll the daemon's ``health`` op until it answers; returns the health
    doc.  Raises :class:`ServiceError` when ``timeout`` elapses first."""
    deadline = time.monotonic() + timeout
    last_error: Optional[Exception] = None
    while time.monotonic() < deadline:
        try:
            with ServiceClient(host, port, timeout=5.0, connect_timeout=1.0) as client:
                return client.health()
        except (ServiceError, ConnectionError, OSError) as error:
            last_error = error
            time.sleep(interval)
    raise ServiceError(
        f"daemon at {host}:{port} not ready after {timeout}s: {last_error}"
    )
