"""Per-client quotas and the fingerprint circuit breaker.

Two throttles stand between the transport and the pool, both answering with
*structured* rejections (the client never sees a dropped connection):

* :class:`ClientQuota` — token-bucket rate limiting keyed by the
  client-supplied ``client_id``.  Each client holds a bucket of ``burst``
  tokens refilled at ``rate`` per second; a verify request spends one.
  An empty bucket answers a 429 ``quota-exceeded`` carrying ``retry_after``
  (the seconds until the next token), so a well-behaved client backs off
  precisely instead of hammering.  Requests without a ``client_id`` share
  the anonymous bucket — a quota'd daemon throttles *everyone*, not just
  clients polite enough to identify themselves.

* :class:`CircuitBreaker` — keyed by the coalescer's
  ``(fingerprint, options)`` key.  A submission whose worker *crashes*
  (hard death / timeout / broken pool — not an engine-level ``error``
  verdict, which is a perfectly good answer) is a strike; ``threshold``
  consecutive strikes trip the circuit and further identical submissions
  short-circuit with a 503 ``circuit-open`` rejection instead of burning a
  pool rebuild each.  After ``cooldown`` seconds the circuit goes
  *half-open*: exactly one probe request is allowed through — success
  closes the circuit, another crash re-trips it for a fresh cooldown.

Both are loop-confined (mutated only from the daemon's event loop), so
neither needs locking, and both take an injectable ``clock`` so tests are
instant and deterministic.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Optional

__all__ = ["TokenBucket", "ClientQuota", "CircuitBreaker"]

#: Bucket key for requests that do not identify themselves.
ANONYMOUS = "<anonymous>"


class TokenBucket:
    """A standard token bucket: ``burst`` capacity, ``rate`` tokens/second."""

    __slots__ = ("rate", "burst", "tokens", "updated", "clock")

    def __init__(
        self,
        rate: float,
        burst: int,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = int(burst)
        self.tokens = float(burst)
        self.clock = clock
        self.updated = clock()

    def _refill(self) -> None:
        now = self.clock()
        self.tokens = min(self.burst, self.tokens + (now - self.updated) * self.rate)
        self.updated = now

    def try_take(self) -> Optional[float]:
        """Spend one token.  ``None`` on success, else seconds until one."""
        self._refill()
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return None
        return (1.0 - self.tokens) / self.rate


class ClientQuota:
    """Per-``client_id`` token buckets with shared rate/burst settings."""

    def __init__(
        self,
        rate: float,
        burst: int,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = float(rate)
        self.burst = int(burst)
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self.throttled = 0

    def try_admit(self, client_id: Optional[str]) -> Optional[float]:
        """``None`` if the client may proceed, else its ``retry_after``."""
        key = client_id if client_id else ANONYMOUS
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._buckets[key] = TokenBucket(
                self.rate, self.burst, self._clock
            )
        retry_after = bucket.try_take()
        if retry_after is not None:
            self.throttled += 1
        return retry_after

    def statistics(self) -> dict[str, Any]:
        return {
            "rate": self.rate,
            "burst": self.burst,
            "clients": len(self._buckets),
            "throttled": self.throttled,
        }


class _Circuit:
    __slots__ = ("strikes", "opened_at", "probing")

    def __init__(self) -> None:
        self.strikes = 0
        self.opened_at: Optional[float] = None
        self.probing = False


class CircuitBreaker:
    """Trip after ``threshold`` consecutive crashes of one submission key."""

    def __init__(
        self,
        threshold: int,
        cooldown: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {cooldown}")
        self.threshold = int(threshold)
        self.cooldown = float(cooldown)
        self._clock = clock
        self._circuits: dict[Any, _Circuit] = {}
        self.tripped = 0
        self.rejections = 0

    def check(self, key: Any) -> Optional[float]:
        """``None`` if ``key`` may run, else its ``retry_after``.

        An open circuit past its cooldown admits exactly one half-open
        probe; concurrent submissions during the probe stay rejected until
        the probe settles (:meth:`record_success` / :meth:`record_failure`).
        """
        circuit = self._circuits.get(key)
        if circuit is None or circuit.opened_at is None:
            return None
        elapsed = self._clock() - circuit.opened_at
        if elapsed >= self.cooldown and not circuit.probing:
            circuit.probing = True  # half-open: let one probe through
            return None
        self.rejections += 1
        return max(self.cooldown - elapsed, 0.0)

    def record_success(self, key: Any) -> None:
        """A completed (non-crash) run: the circuit closes and resets."""
        self._circuits.pop(key, None)

    def record_failure(self, key: Any) -> None:
        """A crash-kind failure: one strike; ``threshold`` strikes trip."""
        circuit = self._circuits.setdefault(key, _Circuit())
        circuit.strikes += 1
        circuit.probing = False
        if circuit.strikes >= self.threshold and circuit.opened_at is None:
            self.tripped += 1
        if circuit.strikes >= self.threshold:
            circuit.opened_at = self._clock()

    @property
    def open_circuits(self) -> int:
        return sum(1 for c in self._circuits.values() if c.opened_at is not None)

    def statistics(self) -> dict[str, Any]:
        return {
            "threshold": self.threshold,
            "cooldown": self.cooldown,
            "tripped": self.tripped,
            "rejections": self.rejections,
            "open_circuits": self.open_circuits,
        }
