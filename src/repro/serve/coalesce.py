"""Request coalescing and bounded admission for the verification daemon.

Both classes are **event-loop confined**: every method is called from the
daemon's single asyncio thread, between awaits, so neither needs a lock.
(The engine work itself runs in worker threads; only the bookkeeping that
decides *whether* to start that work lives here.)

Coalescing key
--------------

Two verify requests are the same unit of work iff they agree on
``program_fingerprint`` *and* on every option that can change the engine's
answer or its cost — which is all of :class:`~repro.core.api.VerifierOptions`.
:func:`options_key` renders the options dict canonically (sorted keys,
compact separators) so dict ordering and equivalent spellings cannot split a
coalescible pair.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from ..core.api import VerifierOptions

__all__ = ["options_key", "InFlight", "Coalescer", "AdmissionControl"]


def options_key(options: VerifierOptions) -> str:
    """A canonical string for the options half of the coalescing key."""
    return json.dumps(options.to_dict(), sort_keys=True, separators=(",", ":"))


class InFlight:
    """One running engine job and the requests attached to it."""

    __slots__ = ("key", "future", "waiters")

    def __init__(self, key: tuple[str, str]):
        self.key = key
        #: Set by the creator in the same loop step as :meth:`Coalescer.attach`
        #: (no await between), so attachers always observe it.
        self.future: Optional[Any] = None
        self.waiters = 1


class Coalescer:
    """In-flight jobs keyed by ``(fingerprint, options_key)``.

    The first request for a key creates the job; concurrent requests with
    the same key *attach* to it and await the same future.  A job leaves the
    map the moment its future resolves, so coalescing is strictly about
    in-flight work — completed results are never replayed from here (the
    warm-start path through the :class:`~repro.core.api.PrecisionStore`
    covers repeats over time).
    """

    def __init__(self) -> None:
        self._jobs: dict[tuple[str, str], InFlight] = {}
        self.jobs_started = 0
        self.coalesce_hits = 0

    def attach(self, key: tuple[str, str]) -> tuple[InFlight, bool]:
        """Join the in-flight job for ``key``, creating it if absent.

        Returns ``(job, created)``; ``created`` tells the caller it owns
        starting the engine run (and admitting it past admission control).
        """
        job = self._jobs.get(key)
        if job is not None:
            job.waiters += 1
            self.coalesce_hits += 1
            return job, False
        job = InFlight(key)
        self._jobs[key] = job
        self.jobs_started += 1
        return job, True

    def abandon(self, key: tuple[str, str]) -> None:
        """Remove a job that never started (its creator was rejected)."""
        job = self._jobs.pop(key, None)
        if job is not None:
            self.jobs_started -= 1

    def finish(self, key: tuple[str, str]) -> None:
        """Remove a completed job; later identical requests start fresh."""
        self._jobs.pop(key, None)

    @property
    def in_flight(self) -> int:
        return len(self._jobs)


class AdmissionControl:
    """A hard cap on uncoalesced engine jobs in the system.

    ``capacity = workers + max_queue``: with every worker busy and the queue
    full, a request that would start a *new* engine run is rejected with a
    429-style ``overloaded`` error doc instead of being buffered without
    bound.  Requests that coalesce onto an in-flight job bypass admission
    entirely — they add no work.
    """

    def __init__(self, workers: int, max_queue: int):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        self.workers = workers
        self.capacity = workers + max_queue
        self.pending = 0
        self.rejections = 0
        self.peak_pending = 0

    def try_admit(self) -> bool:
        """Reserve a slot for one new engine job; False when saturated."""
        if self.pending >= self.capacity:
            self.rejections += 1
            return False
        self.pending += 1
        self.peak_pending = max(self.peak_pending, self.pending)
        return True

    def release(self) -> None:
        """Free the slot of a finished (or failed) engine job."""
        self.pending = max(0, self.pending - 1)

    @property
    def queue_depth(self) -> int:
        """Jobs admitted but (at best) still waiting for a worker thread."""
        return max(0, self.pending - self.workers)
